package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/shard"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// ThroughputPoint is one engine configuration of the multi-query
// throughput experiment.
type ThroughputPoint struct {
	Config       string  `json:"config"` // "single" or "sharded-N"
	Shards       int     `json:"shards"` // 0 for the single-threaded engine
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	MeanMs       float64 `json:"mean_ms"`
	WallMs       float64 `json:"wall_ms"`
	// SpeedupVsSingle is this configuration's events/sec over the
	// single-threaded engine's.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
}

// ThroughputReport is the outcome of the sharding throughput experiment:
// steady-state events/sec of the single-threaded ITA versus the sharded
// engine at several shard counts, on a many-query workload. Hardware
// context is recorded because the sharded engine's win is parallelism:
// with GOMAXPROCS=1 the fan-out can only add overhead, and the report
// says so rather than hiding it.
type ThroughputReport struct {
	Queries    int               `json:"queries"`
	QueryLen   int               `json:"query_len"`
	K          int               `json:"k"`
	Window     int               `json:"window"`
	BatchSize  int               `json:"batch_size"`
	DictSize   int               `json:"dict_size"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Points     []ThroughputPoint `json:"points"`
}

// Throughput measures steady-state event throughput (arrival +
// expiration + all query maintenance) on a workload of `queries`
// standing queries over a count window of `win` documents: first the
// single-threaded ITA, then the sharded engine at every count in
// shardCounts. Events are fed through ProcessBatch in chunks of `batch`
// where the engine supports it.
func Throughput(p Profile, queries, queryLen, win, batch int, shardCounts []int, events int, progress func(string)) (ThroughputReport, error) {
	cfg := p.corpusCfg()
	rep := ThroughputReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		BatchSize:  batch,
		DictSize:   cfg.DictSize,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	run := func(name string, shards int, eng core.Engine) error {
		if progress != nil {
			progress(fmt.Sprintf("throughput: %s (%d queries)", name, queries))
		}
		qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
		if err != nil {
			return err
		}
		dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
		if err != nil {
			return err
		}
		str := stream.New(dSynth.Document, p.Rate, cfg.Seed+1, time.Unix(0, 0))
		for i := 0; i < win; i++ {
			if err := eng.Process(str.Next()); err != nil {
				return err
			}
		}
		for i := 0; i < queries; i++ {
			if err := eng.Register(qSynth.Query(model.QueryID(i+1), p.K, queryLen)); err != nil {
				return err
			}
		}
		bp, batched := eng.(interface {
			ProcessBatch([]*model.Document) error
		})
		done := 0
		start := time.Now()
		for done < events {
			n := batch
			if !batched {
				n = 1
			}
			if rem := events - done; n > rem {
				n = rem
			}
			if batched {
				docs := make([]*model.Document, n)
				for i := range docs {
					docs[i] = str.Next()
				}
				if err := bp.ProcessBatch(docs); err != nil {
					return err
				}
			} else if err := eng.Process(str.Next()); err != nil {
				return err
			}
			done += n
			if p.MaxMeasure > 0 && time.Since(start) > p.MaxMeasure {
				break
			}
		}
		wall := time.Since(start)
		pt := ThroughputPoint{
			Config: name,
			Shards: shards,
			Events: done,
			MeanMs: float64(wall.Nanoseconds()) / 1e6 / float64(done),
			WallMs: float64(wall.Nanoseconds()) / 1e6,
		}
		pt.EventsPerSec = float64(done) / wall.Seconds()
		if len(rep.Points) > 0 && rep.Points[0].EventsPerSec > 0 {
			pt.SpeedupVsSingle = pt.EventsPerSec / rep.Points[0].EventsPerSec
		} else {
			pt.SpeedupVsSingle = 1
		}
		rep.Points = append(rep.Points, pt)
		return nil
	}

	pol := window.Count{N: win}
	if err := run("single", 0, core.NewITA(pol)); err != nil {
		return rep, err
	}
	for _, s := range shardCounts {
		eng := shard.New(pol, s)
		err := run(fmt.Sprintf("sharded-%d", eng.Shards()), eng.Shards(), eng)
		eng.Close()
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r ThroughputReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "throughput — %d queries (n=%d, k=%d), window N=%d, batch=%d, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.BatchSize, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-12s%10s%14s%12s%10s\n", "config", "events", "events/sec", "mean ms", "speedup")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-12s%10d%14.1f%12.4f%9.2fx\n",
			pt.Config, pt.Events, pt.EventsPerSec, pt.MeanMs, pt.SpeedupVsSingle)
	}
	if r.GOMAXPROCS == 1 {
		fmt.Fprintf(&b, "note: GOMAXPROCS=1 — shard fan-out cannot run in parallel on this host; expect the sharded rows to trail the single-threaded engine.\n")
	}
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r ThroughputReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
