package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/shard"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// BatchPoint is one (engine configuration, epoch size) cell of the
// batch sweep.
type BatchPoint struct {
	Config       string  `json:"config"` // "single" or "sharded-N"
	Shards       int     `json:"shards"` // 0 for the single-threaded engine
	EpochSize    int     `json:"epoch_size"`
	Events       int     `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	MeanMs       float64 `json:"mean_ms"`
	WallMs       float64 `json:"wall_ms"`
	// SpeedupVsB1 is this cell's events/sec over the same engine
	// configuration at epoch size 1 (event-serial processing) — the
	// amortization the epoch pipeline buys, isolated from parallelism.
	SpeedupVsB1 float64 `json:"speedup_vs_b1"`
	// Refills and IndexOps explain the speedup: net-effect maintenance
	// and transient elision shrink both with growing epochs.
	Refills  uint64 `json:"refills"`
	IndexOps uint64 `json:"index_ops"`
}

// BatchReport is the outcome of the epoch-size sweep: steady-state
// events/sec of the single-threaded and sharded ITA engines at several
// epoch sizes B, on a many-query workload. B=1 is event-serial
// processing; larger epochs amortize index mutation, affected-query
// probing and (for the sharded engine) the fan-out barrier across the
// batch. Hardware context is recorded because the fan-out part of the
// story needs real cores.
type BatchReport struct {
	Queries    int          `json:"queries"`
	QueryLen   int          `json:"query_len"`
	K          int          `json:"k"`
	Window     int          `json:"window"`
	DictSize   int          `json:"dict_size"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []BatchPoint `json:"points"`
}

// BatchSweep measures steady-state event throughput at every epoch size
// in epochSizes, for the single-threaded ITA and the sharded engine at
// every count in shardCounts, all on the same synthetic workload of
// `queries` standing queries over a count window of `win` documents.
// Events are fed through ProcessEpoch in chunks of the epoch size
// (chunks of one go through Process, i.e. B=1 is the event-serial
// baseline).
func BatchSweep(p Profile, queries, queryLen, win int, epochSizes, shardCounts []int, events int, progress func(string)) (BatchReport, error) {
	cfg := p.corpusCfg()
	rep := BatchReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		DictSize:   cfg.DictSize,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	type engineCfg struct {
		name   string
		shards int
		build  func() (core.Engine, func())
	}
	pol := window.Count{N: win}
	var engines []engineCfg
	engines = append(engines, engineCfg{
		name: "single", shards: 0,
		build: func() (core.Engine, func()) { return core.NewITA(pol), func() {} },
	})
	for _, s := range shardCounts {
		s := s
		eng := shard.New(pol, s) // resolve the auto count for the label
		name := fmt.Sprintf("sharded-%d", eng.Shards())
		resolved := eng.Shards()
		eng.Close()
		engines = append(engines, engineCfg{
			name: name, shards: resolved,
			build: func() (core.Engine, func()) {
				e := shard.New(pol, resolved)
				return e, func() { e.Close() }
			},
		})
	}

	for _, ec := range engines {
		first := len(rep.Points)
		for _, b := range epochSizes {
			if progress != nil {
				progress(fmt.Sprintf("batch sweep: %s B=%d (%d queries)", ec.name, b, queries))
			}
			eng, done := ec.build()
			pt, err := runBatchCell(p, cfg, eng, queries, queryLen, win, b, events)
			done()
			if err != nil {
				return rep, err
			}
			pt.Config = ec.name
			pt.Shards = ec.shards
			rep.Points = append(rep.Points, pt)
		}
		// Normalize against this configuration's B=1 cell wherever it
		// appears in the sweep; without one the ratio is undefined and
		// stays 0 (rendered as "-").
		var b1 float64
		for _, pt := range rep.Points[first:] {
			if pt.EpochSize == 1 {
				b1 = pt.EventsPerSec
			}
		}
		if b1 > 0 {
			for i := range rep.Points[first:] {
				rep.Points[first+i].SpeedupVsB1 = rep.Points[first+i].EventsPerSec / b1
			}
		}
	}
	return rep, nil
}

func runBatchCell(p Profile, cfg corpus.SynthConfig, eng core.Engine, queries, queryLen, win, epochSize, events int) (BatchPoint, error) {
	pt := BatchPoint{EpochSize: epochSize}
	qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	str := stream.New(dSynth.Document, p.Rate, cfg.Seed+1, time.Unix(0, 0))
	for i := 0; i < win; i++ {
		if err := eng.Process(str.Next()); err != nil {
			return pt, err
		}
	}
	for i := 0; i < queries; i++ {
		if err := eng.Register(qSynth.Query(model.QueryID(i+1), p.K, queryLen)); err != nil {
			return pt, err
		}
	}
	// Pre-generate the measured stream so document synthesis stays out
	// of the timed loop — the sweep compares engine cost, not corpus
	// generation.
	docs := make([]*model.Document, events)
	for i := range docs {
		docs[i] = str.Next()
	}
	ep, _ := eng.(core.EpochProcessor)
	statsBefore := *eng.Stats()
	done := 0
	start := time.Now()
	for done < events {
		n := epochSize
		if rem := events - done; n > rem {
			n = rem
		}
		if n > 1 && ep != nil {
			if err := ep.ProcessEpoch(docs[done : done+n]); err != nil {
				return pt, err
			}
		} else {
			n = 1
			if err := eng.Process(docs[done]); err != nil {
				return pt, err
			}
		}
		done += n
		if p.MaxMeasure > 0 && time.Since(start) > p.MaxMeasure {
			break
		}
	}
	wall := time.Since(start)
	stats := eng.Stats()
	pt.Events = done
	pt.MeanMs = float64(wall.Nanoseconds()) / 1e6 / float64(done)
	pt.WallMs = float64(wall.Nanoseconds()) / 1e6
	pt.EventsPerSec = float64(done) / wall.Seconds()
	pt.Refills = stats.Refills - statsBefore.Refills
	pt.IndexOps = stats.IndexInserts + stats.IndexDeletes -
		statsBefore.IndexInserts - statsBefore.IndexDeletes
	return pt, nil
}

// Format renders the report as an aligned text table.
func (r BatchReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch batch sweep — %d queries (n=%d, k=%d), window N=%d, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-12s%6s%10s%14s%12s%12s%10s%12s\n",
		"config", "B", "events", "events/sec", "mean ms", "refills", "idx ops", "vs B=1")
	for _, pt := range r.Points {
		speedup := "-"
		if pt.SpeedupVsB1 > 0 {
			speedup = fmt.Sprintf("%.2fx", pt.SpeedupVsB1)
		}
		fmt.Fprintf(&b, "%-12s%6d%10d%14.1f%12.4f%12d%10d%12s\n",
			pt.Config, pt.EpochSize, pt.Events, pt.EventsPerSec, pt.MeanMs,
			pt.Refills, pt.IndexOps, speedup)
	}
	if r.GOMAXPROCS == 1 {
		fmt.Fprintf(&b, "note: GOMAXPROCS=1 — the sharded rows measure the barrier amortization only; parallel fan-out speedup needs real cores.\n")
	}
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r BatchReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
