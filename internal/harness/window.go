package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/invindex"
	"ita/internal/model"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// WindowSchema identifies the BENCH_WINDOW.json wire format.
const WindowSchema = "ita-bench-window/v1"

// WindowPoint is one window size of the posting-layout experiment: the
// inverted index's storage bill at that window and the read-side price
// of the layout (a cold registration is one full threshold search —
// the same list iteration the refill/probe path replays — so its
// latency is the probe cost of the layout made measurable).
type WindowPoint struct {
	Window          int     `json:"window"`
	Postings        uint64  `json:"postings"`
	PostingBytes    uint64  `json:"posting_bytes"`
	BytesPerPosting float64 `json:"bytes_per_posting"`
	IngestPerSec    float64 `json:"ingest_events_per_sec"`
	RegisterPerSec  float64 `json:"register_per_sec"`
	ProbeLatencyUs  float64 `json:"probe_latency_us"`
}

// WindowReport is the outcome of the window-scale experiment for one
// posting layout: bytes per posting and cold-search latency swept
// across window sizes spanning two orders of magnitude. The slice
// layout's report over the same sweep embeds as Baseline, and the two
// headline ratios compare the layouts at the largest window the sweeps
// share — the point the compressed layout exists for.
type WindowReport struct {
	Schema     string        `json:"schema"`
	Layout     string        `json:"layout"`
	Queries    int           `json:"queries"`
	QueryLen   int           `json:"query_len"`
	K          int           `json:"k"`
	DictSize   int           `json:"dict_size"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Points     []WindowPoint `json:"points"`
	Baseline   *WindowReport `json:"baseline,omitempty"`
	// BytesReductionPct is the bytes-per-posting saving against the
	// baseline at the largest shared window (100·(1 − blocked/slices)).
	BytesReductionPct float64 `json:"bytes_per_posting_reduction_pct,omitempty"`
	// ProbeLatencyRatio is this layout's cold-search latency over the
	// baseline's at the largest shared window; at or below 1.0 the
	// compression is free on the read path.
	ProbeLatencyRatio float64 `json:"probe_latency_ratio,omitempty"`
}

// WindowSweep measures both posting layouts at every window size in
// wins and returns the blocked layout's report with the slice layout's
// embedded as baseline. Each cell bulk-builds the window through the
// epoch pipeline (the path that leaves blocked lists fully packed),
// reads the posting-storage gauges, and then times cold registrations
// over the built window.
func WindowSweep(p Profile, wins []int, queryLen int, progress func(string)) (WindowReport, error) {
	blocked, err := windowReport(p, wins, queryLen, invindex.LayoutBlocked, progress)
	if err != nil {
		return blocked, err
	}
	slices, err := windowReport(p, wins, queryLen, invindex.LayoutSlices, progress)
	if err != nil {
		return blocked, err
	}
	blocked.AttachBaseline(slices)
	return blocked, nil
}

func windowReport(p Profile, wins []int, queryLen int, lay invindex.Layout, progress func(string)) (WindowReport, error) {
	cfg := p.corpusCfg()
	rep := WindowReport{
		Schema:     WindowSchema,
		Layout:     lay.String(),
		Queries:    p.Queries,
		QueryLen:   queryLen,
		K:          p.K,
		DictSize:   cfg.DictSize,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, win := range wins {
		if progress != nil {
			progress(fmt.Sprintf("window: %s layout, N=%d", lay, win))
		}
		pt, err := windowPoint(p, win, queryLen, lay)
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// windowEpoch is the bulk-build batch size; large enough that every
// Zipf-head list crosses the merge-rebuild cutoff each epoch.
const windowEpoch = 512

func windowPoint(p Profile, win, queryLen int, lay invindex.Layout) (WindowPoint, error) {
	pt := WindowPoint{Window: win}
	cfg := p.corpusCfg()
	qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	str := stream.New(dSynth.Document, p.Rate, cfg.Seed+1, time.Unix(0, 0))
	eng := core.NewITA(window.Count{N: win}, core.WithPostingLayout(lay))

	ingestStart := time.Now()
	epoch := make([]*model.Document, 0, windowEpoch)
	for done := 0; done < win; {
		epoch = epoch[:0]
		for len(epoch) < windowEpoch && done < win {
			epoch = append(epoch, str.Next())
			done++
		}
		if err := eng.ProcessEpoch(epoch); err != nil {
			return pt, err
		}
	}
	pt.IngestPerSec = float64(win) / time.Since(ingestStart).Seconds()

	mem := eng.MemoryUsage()
	pt.Postings = mem.Postings
	pt.PostingBytes = mem.PostingBytes
	if mem.Postings > 0 {
		pt.BytesPerPosting = float64(mem.PostingBytes) / float64(mem.Postings)
	}

	// Cold registrations, best of three reps: every rep registers a
	// fresh batch of queries (each runs one full threshold search over
	// the built lists) and unregisters them again so the next rep starts
	// cold too. The fastest rep rejects transient interference the same
	// way the scale experiment's ingest measurement does.
	best := 0.0
	id := model.QueryID(1)
	for rep := 0; rep < 3; rep++ {
		queries := make([]*model.Query, p.Queries)
		for i := range queries {
			queries[i] = qSynth.Query(id, p.K, queryLen)
			id++
		}
		regStart := time.Now()
		for _, q := range queries {
			if err := eng.Register(q); err != nil {
				return pt, err
			}
		}
		wall := time.Since(regStart)
		for _, q := range queries {
			eng.Unregister(q.ID)
		}
		if r := float64(len(queries)) / wall.Seconds(); r > best {
			best = r
		}
		if p.MaxMeasure > 0 && time.Since(ingestStart) > p.MaxMeasure {
			break
		}
	}
	pt.RegisterPerSec = best
	if best > 0 {
		pt.ProbeLatencyUs = 1e6 / best
	}
	return pt, nil
}

// AttachBaseline embeds the other layout's report and computes the
// headline ratios at the largest window both sweeps share.
func (r *WindowReport) AttachBaseline(base WindowReport) {
	b := base
	r.Baseline = &b
	var cur, old *WindowPoint
	for i := range r.Points {
		for j := range b.Points {
			if r.Points[i].Window == b.Points[j].Window &&
				(cur == nil || r.Points[i].Window > cur.Window) {
				cur, old = &r.Points[i], &b.Points[j]
			}
		}
	}
	if cur == nil {
		return
	}
	if old.BytesPerPosting > 0 {
		r.BytesReductionPct = 100 * (1 - cur.BytesPerPosting/old.BytesPerPosting)
	}
	if old.ProbeLatencyUs > 0 {
		r.ProbeLatencyRatio = cur.ProbeLatencyUs / old.ProbeLatencyUs
	}
}

// Format renders the report as an aligned text table.
func (r WindowReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window — layout %s, %d queries × %d terms, k=%d, dict %d\n",
		r.Layout, r.Queries, r.QueryLen, r.K, r.DictSize)
	header := func() {
		fmt.Fprintf(&b, "%-10s%14s%18s%14s%16s\n", "window", "postings", "bytes/posting", "ingest ev/s", "probe µs")
	}
	row := func(pt WindowPoint) {
		fmt.Fprintf(&b, "%-10d%14d%18.2f%14.0f%16.2f\n",
			pt.Window, pt.Postings, pt.BytesPerPosting, pt.IngestPerSec, pt.ProbeLatencyUs)
	}
	header()
	for _, pt := range r.Points {
		row(pt)
	}
	if r.Baseline != nil {
		fmt.Fprintf(&b, "baseline — layout %s\n", r.Baseline.Layout)
		header()
		for _, pt := range r.Baseline.Points {
			row(pt)
		}
		fmt.Fprintf(&b, "bytes/posting reduction at largest shared window: %.1f%%\n", r.BytesReductionPct)
		fmt.Fprintf(&b, "probe latency ratio at largest shared window: %.2f\n", r.ProbeLatencyRatio)
	}
	return b.String()
}

// JSON renders the report for BENCH_WINDOW.json.
func (r WindowReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
