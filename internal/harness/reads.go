package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ita"
)

// ReadPoint is one (mode, reader-count) cell of the mixed read/write
// experiment.
type ReadPoint struct {
	// Mode is "published" (the wait-free read path: Results loads the
	// published epoch view, never the engine lock) or "locked" (the
	// pre-published-view architecture, emulated by serializing every
	// read and write on one mutex — exactly what serving off the ingest
	// lock costs).
	Mode        string  `json:"mode"`
	Readers     int     `json:"readers"`
	Reads       int     `json:"reads"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	MeanReadUs  float64 `json:"mean_read_us"`
	// Read latency distribution. The tail is where the architectures
	// separate even on one core: a locked reader queues behind whole
	// epoch ingests (milliseconds), a published reader never blocks.
	P50ReadUs    float64 `json:"p50_read_us"`
	P99ReadUs    float64 `json:"p99_read_us"`
	MaxReadUs    float64 `json:"max_read_us"`
	WriteEvents  int     `json:"write_events"`
	WritesPerSec float64 `json:"writes_per_sec"`
	// SpeedupVsLocked is this cell's reads/sec over the locked cell at
	// the same reader count (on the published rows; 1 on locked rows).
	SpeedupVsLocked float64 `json:"speedup_vs_locked"`
}

// ReadsReport is the outcome of the mixed read/write experiment: R
// concurrent reader goroutines hammer Results while one writer streams
// epochs, for the wait-free published read path versus the locked
// baseline. Hardware context is recorded as usual; note that even at
// GOMAXPROCS=1 the published path wins decisively, because a locked
// reader queues behind entire epoch ingests (milliseconds) while a
// published reader never waits at all.
type ReadsReport struct {
	Queries    int         `json:"queries"`
	QueryLen   int         `json:"query_len"`
	K          int         `json:"k"`
	Window     int         `json:"window"`
	BatchSize  int         `json:"batch_size"`
	DictSize   int         `json:"dict_size"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	NumCPU     int         `json:"num_cpu"`
	CellMs     float64     `json:"cell_ms"` // measured wall time per cell
	Points     []ReadPoint `json:"points"`
}

// readsText builds deterministic synthetic texts: uniform draws over a
// compact vocabulary, wide enough that top-k sets are contested but
// every query matches something.
func readsText(rnd *rand.Rand, dict, words int) string {
	var sb strings.Builder
	for i := 0; i < words; i++ {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "term%d", rnd.Intn(dict))
	}
	return sb.String()
}

// ReadWrite measures sustained read throughput under concurrent epoch
// ingestion: for every mode × readerCount cell, R reader goroutines
// call Results on random queries as fast as they can while one writer
// drives IngestBatch epochs of `batch` documents, for `dur` of wall
// time. Reads on the published path are wait-free; the locked baseline
// serializes reads and writes on a single mutex, reproducing the
// pre-published-view facade.
func ReadWrite(p Profile, queries, queryLen, win, batch int, readerCounts []int, dur time.Duration, progress func(string)) (ReadsReport, error) {
	const dict = 2000
	rep := ReadsReport{
		Queries:    queries,
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		BatchSize:  batch,
		DictSize:   dict,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CellMs:     float64(dur.Nanoseconds()) / 1e6,
	}

	runCell := func(mode string, readers int) (ReadPoint, error) {
		pt := ReadPoint{Mode: mode, Readers: readers}
		if progress != nil {
			progress(fmt.Sprintf("reads: %s R=%d (%d queries)", mode, readers, queries))
		}
		eng, err := ita.New(ita.WithCountWindow(win), ita.WithBatchSize(batch))
		if err != nil {
			return pt, err
		}
		defer eng.Close()

		// A single mutex emulating the pre-published-view read path: in
		// published mode it is simply never used.
		var lock sync.Mutex
		locked := mode == "locked"

		rnd := rand.New(rand.NewSource(42))
		clock := time.Unix(0, 0)
		warm := make([]ita.TimedText, win)
		for i := range warm {
			clock = clock.Add(time.Millisecond)
			warm[i] = ita.TimedText{Text: readsText(rnd, dict, 12), At: clock}
		}
		if _, err := eng.IngestBatch(warm); err != nil {
			return pt, err
		}
		qids := make([]ita.QueryID, queries)
		qrnd := rand.New(rand.NewSource(7777))
		for i := range qids {
			id, err := eng.Register(readsText(qrnd, dict, queryLen), p.K)
			if err != nil {
				return pt, err
			}
			qids[i] = id
		}

		var stop atomic.Bool
		var wg sync.WaitGroup
		var writeEvents atomic.Int64
		reads := make([]int64, readers)
		lats := make([][]int64, readers) // per-read ns, bounded per reader

		wg.Add(1)
		go func() { // writer: stream epochs as fast as the engine takes them
			defer wg.Done()
			wrnd := rand.New(rand.NewSource(43))
			items := make([]ita.TimedText, batch)
			for !stop.Load() {
				for i := range items {
					clock = clock.Add(time.Millisecond)
					items[i] = ita.TimedText{Text: readsText(wrnd, dict, 12), At: clock}
				}
				if locked {
					lock.Lock()
				}
				_, err := eng.IngestBatch(items)
				if locked {
					lock.Unlock()
				}
				if err != nil {
					panic(err) // non-decreasing clock by construction
				}
				writeEvents.Add(int64(batch))
			}
		}()
		for r := 0; r < readers; r++ {
			r := r
			wg.Add(1)
			go func() {
				defer wg.Done()
				const maxSamples = 1 << 20
				rrnd := rand.New(rand.NewSource(int64(100 + r)))
				samples := make([]int64, 0, 1<<16)
				var n int64
				for !stop.Load() {
					id := qids[rrnd.Intn(len(qids))]
					t0 := time.Now()
					if locked {
						lock.Lock()
					}
					res := eng.Results(id)
					if locked {
						lock.Unlock()
					}
					if len(samples) < maxSamples {
						samples = append(samples, time.Since(t0).Nanoseconds())
					}
					if res == nil {
						panic("registered query returned nil")
					}
					n++
				}
				reads[r] = n
				lats[r] = samples
			}()
		}

		start := time.Now()
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		wall := time.Since(start)

		for _, n := range reads {
			pt.Reads += int(n)
		}
		pt.WriteEvents = int(writeEvents.Load())
		pt.ReadsPerSec = float64(pt.Reads) / wall.Seconds()
		pt.WritesPerSec = float64(pt.WriteEvents) / wall.Seconds()
		if pt.Reads > 0 {
			// Mean wall time per read across all reader goroutines.
			pt.MeanReadUs = wall.Seconds() * float64(readers) / float64(pt.Reads) * 1e6
		}
		var all []int64
		for _, s := range lats {
			all = append(all, s...)
		}
		if len(all) > 0 {
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pt.P50ReadUs = float64(all[len(all)/2]) / 1e3
			pt.P99ReadUs = float64(all[len(all)*99/100]) / 1e3
			pt.MaxReadUs = float64(all[len(all)-1]) / 1e3
		}
		return pt, nil
	}

	for _, readers := range readerCounts {
		lockedPt, err := runCell("locked", readers)
		if err != nil {
			return rep, err
		}
		lockedPt.SpeedupVsLocked = 1
		pubPt, err := runCell("published", readers)
		if err != nil {
			return rep, err
		}
		if lockedPt.ReadsPerSec > 0 {
			pubPt.SpeedupVsLocked = pubPt.ReadsPerSec / lockedPt.ReadsPerSec
		}
		rep.Points = append(rep.Points, lockedPt, pubPt)
	}
	return rep, nil
}

// Format renders the report as an aligned text table.
func (r ReadsReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "mixed read/write — %d queries (n=%d, k=%d), window N=%d, B=%d, GOMAXPROCS=%d\n",
		r.Queries, r.QueryLen, r.K, r.Window, r.BatchSize, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-11s%9s%14s%12s%12s%12s%14s%12s\n",
		"mode", "readers", "reads/sec", "p50 µs", "p99 µs", "max µs", "writes/sec", "vs locked")
	for _, pt := range r.Points {
		speedup := "-"
		if pt.SpeedupVsLocked > 0 {
			speedup = fmt.Sprintf("%.2fx", pt.SpeedupVsLocked)
		}
		fmt.Fprintf(&b, "%-11s%9d%14.0f%12.2f%12.1f%12.0f%14.0f%12s\n",
			pt.Mode, pt.Readers, pt.ReadsPerSec, pt.P50ReadUs, pt.P99ReadUs, pt.MaxReadUs, pt.WritesPerSec, speedup)
	}
	if r.GOMAXPROCS == 1 {
		fmt.Fprintf(&b, "note: GOMAXPROCS=1 — aggregate reads/sec is CPU-bound, so compare the latency tail: a locked reader queues behind whole epoch ingests (p99/max in the milliseconds), a published reader never blocks. The reads/sec gap additionally widens with real cores.\n")
	}
	return b.String()
}

// JSON renders the report for BENCH_*.json files.
func (r ReadsReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
