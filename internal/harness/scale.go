package harness

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// ScaleSchema identifies the BENCH_SCALE.json wire format. v2 added
// the per-event probe-cost fields on each point and the report-level
// ingest flatness ratio; v1 reports remain decodable (the new fields
// read as zero).
const ScaleSchema = "ita-bench-scale/v2"

// ScalePoint is one registered-query count of the scale experiment.
// The per-event fields are the probe cost model made measurable: an
// arrival's cost is the number of queries it actually probes (probe
// hits), not the number sorted after it in some term list, so a
// near-flat ProbeHitsPerEvent across a 100× query sweep is exactly the
// claim "cost proportional to affected queries" in numbers.
type ScalePoint struct {
	Queries            int     `json:"queries"`
	HeapDeltaBytes     uint64  `json:"heap_delta_bytes"`
	BytesPerQuery      float64 `json:"bytes_per_query"`
	RegisterPerSec     float64 `json:"register_per_sec"`
	RegisterWallMs     float64 `json:"register_wall_ms"`
	IngestEvents       int     `json:"ingest_events"`
	IngestPerSec       float64 `json:"ingest_events_per_sec"`
	ProbeHitsPerEvent  float64 `json:"probe_hits_per_event"`
	ScoreCompsPerEvent float64 `json:"score_computations_per_event"`
}

// ScaleReport is the outcome of the query-scale experiment: engine-side
// memory per registered query (heap deltas around registration, after
// forced GCs) and steady-state ingest throughput, swept across query
// counts. Layout names the query-state representation measured, so a
// report produced by an older binary can be embedded as the Baseline of
// a newer one and the two layouts compared point by point.
type ScaleReport struct {
	Schema     string       `json:"schema"`
	Layout     string       `json:"layout"`
	Workload   string       `json:"workload,omitempty"`
	QueryLen   int          `json:"query_len"`
	K          int          `json:"k"`
	Window     int          `json:"window"`
	DictSize   int          `json:"dict_size"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Points     []ScalePoint `json:"points"`
	// IngestCurveRatio is ingest events/s at the largest query count
	// divided by events/s at the smallest: 1.0 is a perfectly flat
	// curve, and anything near zero is the ingest cliff this experiment
	// exists to catch.
	IngestCurveRatio float64 `json:"ingest_curve_ratio,omitempty"`
	// Baseline is an earlier layout's report over the same sweep,
	// embedded for the record; ReductionPct compares bytes/query at the
	// largest query count the two reports share.
	Baseline     *ScaleReport `json:"baseline,omitempty"`
	ReductionPct float64      `json:"bytes_per_query_reduction_pct,omitempty"`
}

// heapAlloc returns the live heap after settling the collector. Two GC
// cycles let finalizer-freed memory actually return to the heap stats.
func heapAlloc() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// Scale measures bytes/query and ingest throughput of the single
// threaded ITA at every query count in counts. Query term vectors are
// generated before the measured region, so the reported bytes are the
// engine-internal per-query cost (trees, thresholds, result sets,
// views, lookup structures) of the layout under test — identical
// methodology for every layout, which is what makes the baseline
// comparison honest. Queries draw their terms uniformly from the
// dictionary — the paper's continuous-query workload ("terms selected
// randomly from the dictionary"), and the right model for millions of
// *distinct* standing queries: per-term query populations stay Zipfian
// on the document side (which terms arrive) while each query's match
// set is sparse, so ingest cost is governed by the queries a document
// can actually affect. The Zipf-popular query mix (corpus.PopularQuery)
// remains the adversarial ablation workload of the figure experiments;
// under it every document genuinely updates a constant fraction of all
// results, so no probe structure can make that curve flat.
func Scale(p Profile, counts []int, queryLen, win, events int, layout string, progress func(string)) (ScaleReport, error) {
	cfg := p.corpusCfg()
	rep := ScaleReport{
		Schema:     ScaleSchema,
		Layout:     layout,
		Workload:   "uniform-dict",
		QueryLen:   queryLen,
		K:          p.K,
		Window:     win,
		DictSize:   cfg.DictSize,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	for _, n := range counts {
		if progress != nil {
			progress(fmt.Sprintf("scale: %d queries", n))
		}
		pt, err := scalePoint(p, cfg, n, queryLen, win, events)
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, pt)
	}
	if n := len(rep.Points); n > 1 && rep.Points[0].IngestPerSec > 0 {
		rep.IngestCurveRatio = rep.Points[n-1].IngestPerSec / rep.Points[0].IngestPerSec
	}
	return rep, nil
}

func scalePoint(p Profile, cfg corpus.SynthConfig, n, queryLen, win, events int) (ScalePoint, error) {
	pt := ScalePoint{Queries: n}
	qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return pt, err
	}
	queries := make([]*model.Query, n)
	for i := range queries {
		queries[i] = qSynth.Query(model.QueryID(i+1), p.K, queryLen)
	}
	str := stream.New(dSynth.Document, p.Rate, cfg.Seed+1, time.Unix(0, 0))
	eng := core.NewITA(window.Count{N: win})
	for i := 0; i < win; i++ {
		if err := eng.Process(str.Next()); err != nil {
			return pt, err
		}
	}

	before := heapAlloc()
	regStart := time.Now()
	for _, q := range queries {
		if err := eng.Register(q); err != nil {
			return pt, err
		}
	}
	regWall := time.Since(regStart)
	after := heapAlloc()
	if after > before {
		pt.HeapDeltaBytes = after - before
	}
	pt.BytesPerQuery = float64(pt.HeapDeltaBytes) / float64(n)
	pt.RegisterWallMs = float64(regWall.Nanoseconds()) / 1e6
	pt.RegisterPerSec = float64(n) / regWall.Seconds()

	statsBefore := *eng.Stats()
	// Ingest throughput is the best of three back-to-back reps. The
	// engine is in steady state for all three, so they measure the same
	// thing; taking the fastest rejects transient interference (a GC
	// cycle inherited from the registration burst, a noisy neighbor on
	// the host) that a single timed window would bake into the record.
	best, done := 0.0, 0
	for rep := 0; rep < 3; rep++ {
		repStart := time.Now()
		repDone := 0
		for ; repDone < events; repDone++ {
			if err := eng.Process(str.Next()); err != nil {
				return pt, err
			}
			if p.MaxMeasure > 0 && time.Since(repStart) > p.MaxMeasure {
				repDone++
				break
			}
		}
		done += repDone
		if r := float64(repDone) / time.Since(repStart).Seconds(); r > best {
			best = r
		}
	}
	statsAfter := *eng.Stats()
	pt.IngestEvents = done
	pt.IngestPerSec = best
	pt.ProbeHitsPerEvent = float64(statsAfter.ProbeHits-statsBefore.ProbeHits) / float64(done)
	pt.ScoreCompsPerEvent = float64(statsAfter.ScoreComputations-statsBefore.ScoreComputations) / float64(done)
	runtime.KeepAlive(queries)
	return pt, nil
}

// AttachBaseline embeds an earlier layout's report and computes the
// bytes/query reduction at the largest query count both sweeps share.
// The base's own baseline is kept, so successive layout generations
// chain for the record.
func (r *ScaleReport) AttachBaseline(base ScaleReport) {
	b := base
	r.Baseline = &b
	var cur, old *ScalePoint
	for i := range r.Points {
		for j := range b.Points {
			if r.Points[i].Queries == b.Points[j].Queries &&
				(cur == nil || r.Points[i].Queries > cur.Queries) {
				cur, old = &r.Points[i], &b.Points[j]
			}
		}
	}
	if cur != nil && old.BytesPerQuery > 0 {
		r.ReductionPct = 100 * (1 - cur.BytesPerQuery/old.BytesPerQuery)
	}
}

// Format renders the report as an aligned text table.
func (r ScaleReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scale — layout %s, query len %d, k=%d, window N=%d, GOMAXPROCS=%d\n",
		r.Layout, r.QueryLen, r.K, r.Window, r.GOMAXPROCS)
	fmt.Fprintf(&b, "%-10s%16s%14s%14s%14s%14s\n", "queries", "bytes/query", "reg/sec", "ingest ev/s", "probes/ev", "heap MiB")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-10d%16.1f%14.0f%14.1f%14.1f%14.1f\n",
			pt.Queries, pt.BytesPerQuery, pt.RegisterPerSec, pt.IngestPerSec,
			pt.ProbeHitsPerEvent, float64(pt.HeapDeltaBytes)/(1<<20))
	}
	if r.IngestCurveRatio > 0 {
		fmt.Fprintf(&b, "ingest flatness (largest/smallest count): %.2f\n", r.IngestCurveRatio)
	}
	if r.Baseline != nil {
		fmt.Fprintf(&b, "baseline — layout %s\n", r.Baseline.Layout)
		for _, pt := range r.Baseline.Points {
			fmt.Fprintf(&b, "%-10d%16.1f%14.0f%14.1f%14.1f\n",
				pt.Queries, pt.BytesPerQuery, pt.RegisterPerSec, pt.IngestPerSec,
				float64(pt.HeapDeltaBytes)/(1<<20))
		}
		fmt.Fprintf(&b, "bytes/query reduction at largest shared point: %.1f%%\n", r.ReductionPct)
	}
	return b.String()
}

// JSON renders the report for BENCH_SCALE.json.
func (r ScaleReport) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }
