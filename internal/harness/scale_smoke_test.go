package harness

import (
	"testing"
	"time"

	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/shard"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// TestScaleSmoke100k is the CI scale smoke: 100,000 standing queries on
// the sharded engine, driven through the full dense-id life cycle —
// register, ingest, unregister half, re-register into the freed slots,
// ingest again — with a brute-force equivalence spot-check at the end.
// It runs in short mode by design (CI invokes it directly); the full
// sweep with memory measurement lives in itabench -exp scale.
func TestScaleSmoke100k(t *testing.T) {
	if !testing.Short() {
		// ~2 CPU-minutes: far too heavy to ride along in the race-enabled
		// full suite. CI runs it as its own short-mode step.
		t.Skip("scale smoke runs in short mode only (go test -short -run TestScaleSmoke100k)")
	}
	const (
		nq       = 100_000
		win      = 128
		queryLen = 4
		k        = 5
	)
	cfg := QuickProfile().corpusCfg()
	qSynth, err := corpus.NewSynth(withSeed(cfg, 7777), vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		t.Fatal(err)
	}
	str := stream.New(dSynth.Document, 200, cfg.Seed+1, time.Unix(0, 0))

	eng := shard.New(window.Count{N: win}, 2)
	defer eng.Close()
	for i := 0; i < win; i++ {
		if err := eng.Process(str.Next()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nq; i++ {
		if err := eng.Register(qSynth.PopularQuery(model.QueryID(i+1), k, queryLen)); err != nil {
			t.Fatalf("register %d: %v", i+1, err)
		}
	}
	if got := eng.Queries(); got != nq {
		t.Fatalf("Queries = %d, want %d", got, nq)
	}

	ingest := func(n int) {
		t.Helper()
		docs := make([]*model.Document, n)
		for i := range docs {
			docs[i] = str.Next()
		}
		if err := eng.ProcessEpoch(docs); err != nil {
			t.Fatal(err)
		}
	}
	ingest(48)

	// Unregister every other query: 50k dense slots hit the free list.
	for id := model.QueryID(1); id <= nq; id += 2 {
		if !eng.Unregister(id) {
			t.Fatalf("unregister %d reported unknown", id)
		}
	}
	// Re-register fresh external ids into the freed slots.
	const reborn = 25_000
	for i := 0; i < reborn; i++ {
		id := model.QueryID(nq + 1 + i)
		if err := eng.Register(qSynth.PopularQuery(id, k, queryLen)); err != nil {
			t.Fatalf("re-register %d: %v", id, err)
		}
	}
	ingest(48)
	if got, want := eng.Queries(), nq/2+reborn; got != want {
		t.Fatalf("Queries = %d, want %d", got, want)
	}

	// Equivalence spot-check against a brute-force scan of the live
	// window, across survivors, freed ids and re-registered ids.
	var docs []*model.Document
	eng.EachDoc(func(d *model.Document) { docs = append(docs, d) })
	if len(docs) != win {
		t.Fatalf("window holds %d docs, want %d", len(docs), win)
	}
	bruteForce := func(q *model.Query) []model.ScoredDoc {
		var all []model.ScoredDoc
		for _, d := range docs {
			if s := model.Score(q, d); s > 0 {
				all = append(all, model.ScoredDoc{Doc: d.ID, Score: s})
			}
		}
		model.SortScored(all)
		if len(all) > q.K {
			all = all[:q.K]
		}
		return all
	}
	queryByID := make(map[model.QueryID]*model.Query)
	eng.EachQuery(func(q *model.Query) { queryByID[q.ID] = q })
	checked := 0
	for id := model.QueryID(2); id <= nq+reborn; id += 3571 { // scattered sample
		q, live := queryByID[id]
		got, ok := eng.Result(id)
		if !live {
			if ok {
				t.Fatalf("dead query %d still served %v", id, got)
			}
			continue
		}
		if !ok {
			t.Fatalf("live query %d has no result", id)
		}
		want := bruteForce(q)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d results, brute force %d\n got %v\nwant %v", id, len(got), len(want), got, want)
		}
		for i := range got {
			// Compare by score only at the k-th tie group boundary; the
			// engine's answer must be score-identical (any member of a
			// tie at the k-th score is a correct top-k).
			if got[i].Score != want[i].Score {
				t.Fatalf("query %d: rank %d: score %g, brute force %g", id, i, got[i].Score, want[i].Score)
			}
			if got[i].Doc != want[i].Doc && (i == 0 || got[i].Score != got[i-1].Score) &&
				(i+1 == len(got) || got[i].Score != want[i+1].Score) {
				t.Fatalf("query %d: rank %d: doc %d, brute force %d (not a tie)", id, i, got[i].Doc, want[i].Doc)
			}
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("spot-check covered only %d queries", checked)
	}
	// Every unregistered id must have gone dark.
	for id := model.QueryID(1); id <= nq; id += 9973 {
		if id%2 == 1 {
			if _, ok := eng.Result(id); ok {
				t.Fatalf("unregistered query %d still has a result", id)
			}
		}
	}
}
