package harness

import (
	"fmt"
	"strings"
	"time"

	"ita/internal/core"
	"ita/internal/corpus"
	"ita/internal/model"
	"ita/internal/shard"
	"ita/internal/stream"
	"ita/internal/vsm"
	"ita/internal/window"
)

// ValidationReport summarizes a cross-engine validation run: every
// engine's result compared against the brute-force oracle after every
// event of a benchmark-shaped stream, plus ITA's structural invariants.
type ValidationReport struct {
	Engines       []string
	Events        int
	Queries       int
	Comparisons   int
	Mismatches    []string // first few mismatch descriptions
	InvariantErrs []string
}

// OK reports whether the run found no disagreements.
func (r ValidationReport) OK() bool {
	return len(r.Mismatches) == 0 && len(r.InvariantErrs) == 0
}

// Format renders the report.
func (r ValidationReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "validation — %d events × %d queries, engines: %s\n",
		r.Events, r.Queries, strings.Join(r.Engines, ", "))
	fmt.Fprintf(&b, "  result comparisons: %d\n", r.Comparisons)
	if r.OK() {
		fmt.Fprintf(&b, "  all engines agree with the brute-force oracle; ITA invariants hold\n")
		return b.String()
	}
	for _, m := range r.Mismatches {
		fmt.Fprintf(&b, "  MISMATCH: %s\n", m)
	}
	for _, m := range r.InvariantErrs {
		fmt.Fprintf(&b, "  INVARIANT: %s\n", m)
	}
	return b.String()
}

// Validate drives ITA and Naïve through a scaled-down benchmark
// workload (real synthetic corpus, Poisson stream) and cross-checks
// every query's result against the Oracle after every event. It is the
// harness-level confidence check behind `itabench -exp validate`:
// unlike the unit tests, it runs on the exact workload distribution the
// figures use.
func Validate(p Profile, events int) (ValidationReport, error) {
	cfg := p.corpusCfg()
	// Scale down so the oracle's full scans stay tractable.
	if cfg.DictSize > 30000 {
		cfg.DictSize = 30000
	}
	const win = 60
	const nQueries = 40

	qSynth, err := corpus.NewSynth(withSeed(cfg, 4242), vsm.Cosine{})
	if err != nil {
		return ValidationReport{}, err
	}
	dSynth, err := corpus.NewSynth(cfg, vsm.Cosine{})
	if err != nil {
		return ValidationReport{}, err
	}
	pol := window.Count{N: win}
	oracle := core.NewOracle(pol)
	sharded := shard.New(pol, 4)
	defer sharded.Close()
	engines := []core.Engine{core.NewITA(pol), core.NewNaive(pol), sharded}
	names := []string{"ITA", "Naive", "ITA-sharded-4"}

	var queries []*model.Query
	for i := 0; i < nQueries; i++ {
		// Half the queries use Zipf-popular terms so results are
		// non-trivially populated inside the small validation window.
		var q *model.Query
		if i%2 == 0 {
			q = qSynth.PopularQuery(model.QueryID(i+1), 5, 4)
		} else {
			q = qSynth.Query(model.QueryID(i+1), 5, 4)
		}
		queries = append(queries, q)
		if err := oracle.Register(q); err != nil {
			return ValidationReport{}, err
		}
		for _, e := range engines {
			if err := e.Register(q); err != nil {
				return ValidationReport{}, err
			}
		}
	}

	str := stream.New(dSynth.Document, p.Rate, cfg.Seed+1, time.Unix(0, 0))
	rep := ValidationReport{Engines: names, Events: events, Queries: nQueries}
	var winDocs []*model.Document
	for step := 0; step < events; step++ {
		d := str.Next()
		winDocs = append(winDocs, d)
		if len(winDocs) > win {
			winDocs = winDocs[1:]
		}
		if err := oracle.Process(d); err != nil {
			return rep, err
		}
		for _, e := range engines {
			if err := e.Process(d); err != nil {
				return rep, err
			}
		}
		if step%16 == 0 {
			for ei, e := range engines {
				ck, ok := e.(interface{ CheckInvariants() error })
				if !ok {
					continue
				}
				if err := ck.CheckInvariants(); err != nil && len(rep.InvariantErrs) < 5 {
					rep.InvariantErrs = append(rep.InvariantErrs, fmt.Sprintf("%s event %d: %v", names[ei], step, err))
				}
			}
		}
		for _, q := range queries {
			want, _ := oracle.Result(q.ID)
			for ei, e := range engines {
				got, _ := e.Result(q.ID)
				rep.Comparisons++
				if msg := compare(names[ei], step, q, got, want, winDocs); msg != "" && len(rep.Mismatches) < 5 {
					rep.Mismatches = append(rep.Mismatches, msg)
				}
			}
		}
	}
	return rep, nil
}

func compare(tag string, step int, q *model.Query, got, want []model.ScoredDoc, win []*model.Document) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%s event %d query %d: %d results, oracle %d", tag, step, q.ID, len(got), len(want))
	}
	byID := map[model.DocID]*model.Document{}
	for _, d := range win {
		byID[d.ID] = d
	}
	for i := range got {
		if got[i].Score != want[i].Score {
			return fmt.Sprintf("%s event %d query %d pos %d: score %g, oracle %g", tag, step, q.ID, i, got[i].Score, want[i].Score)
		}
		d, ok := byID[got[i].Doc]
		if !ok {
			return fmt.Sprintf("%s event %d query %d: doc %d not in window", tag, step, q.ID, got[i].Doc)
		}
		if s := model.Score(q, d); s != got[i].Score {
			return fmt.Sprintf("%s event %d query %d: doc %d reported %g, true %g", tag, step, q.ID, got[i].Doc, got[i].Score, s)
		}
	}
	return ""
}
