package ita

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// feedTexts generates a deterministic stream of small overlapping
// documents for facade-level equivalence checks.
func feedTexts(n int) []string {
	words := []string{"oil", "crude", "market", "price", "export", "tanker", "refinery", "barrel"}
	out := make([]string, n)
	for i := range out {
		a := words[i%len(words)]
		b := words[(i*3+1)%len(words)]
		c := words[(i*5+2)%len(words)]
		out[i] = fmt.Sprintf("%s %s %s report %d", a, b, c, i%7)
	}
	return out
}

// TestWithShardsMatchesSingleThreaded drives the sharded facade engine
// and the default single-threaded one through an identical text stream
// and requires identical results for every query at every step.
func TestWithShardsMatchesSingleThreaded(t *testing.T) {
	single := newEngine(t, WithCountWindow(12))
	sharded := newEngine(t, WithCountWindow(12), WithShards(4))
	defer sharded.Close()

	if got := sharded.Algorithm(); got != ShardedIncrementalThreshold {
		t.Fatalf("Algorithm() = %v, want ShardedIncrementalThreshold", got)
	}
	if got := sharded.Algorithm().String(); got != "ita-sharded" {
		t.Fatalf("Algorithm().String() = %q", got)
	}

	queries := []string{"crude oil", "tanker export market", "refinery barrel price", "oil price"}
	for _, q := range queries {
		id1, err := single.Register(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		id2, err := sharded.Register(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if id1 != id2 {
			t.Fatalf("query ids diverge: %d vs %d", id1, id2)
		}
	}
	for i, text := range feedTexts(80) {
		ts := at(i * 10)
		if _, err := single.IngestText(text, ts); err != nil {
			t.Fatal(err)
		}
		if _, err := sharded.IngestText(text, ts); err != nil {
			t.Fatal(err)
		}
		for qid := QueryID(1); qid <= 4; qid++ {
			want := single.Results(qid)
			got := sharded.Results(qid)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d query %d:\nsharded %v\nsingle  %v", i, qid, got, want)
			}
		}
	}
	if single.Stats() != sharded.Stats() {
		t.Fatalf("stats diverge:\nsharded %+v\nsingle  %+v", sharded.Stats(), single.Stats())
	}
}

// sameTopK compares two result lists under the epoch pipeline's
// guarantee: identical scores at every rank, and identical documents at
// every rank whose score differs from the k-th (last) score. Documents
// inside the equal-score group at the k-th score may legitimately
// differ between maintenance schedules — every member of the group is
// an equally correct k-th result (invariant I2 forces all docs scoring
// above Sk into every correct result, so only the boundary group has
// freedom).
func sameTopK(got, want []Match) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d results, want %d (got=%v want=%v)", len(got), len(want), got, want)
	}
	if len(got) == 0 {
		return nil
	}
	last := want[len(want)-1].Score
	for i := range got {
		if got[i].Score != want[i].Score {
			return fmt.Errorf("position %d score %g, want %g (got=%v want=%v)", i, got[i].Score, want[i].Score, got, want)
		}
		if got[i].Score != last && got[i] != want[i] {
			return fmt.Errorf("position %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	return nil
}

// TestIngestBatch checks the batch ingestion path — routed through the
// epoch pipeline — against per-document ingestion on both the
// single-threaded and sharded engines, including watch-delta delivery.
func TestIngestBatch(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var loop, batch *Engine
			if shards == 1 {
				loop, batch = newEngine(t, WithCountWindow(10)), newEngine(t, WithCountWindow(10))
			} else {
				loop = newEngine(t, WithCountWindow(10), WithShards(shards))
				batch = newEngine(t, WithCountWindow(10), WithShards(shards))
				defer loop.Close()
				defer batch.Close()
			}
			if _, err := loop.Register("crude oil market", 3); err != nil {
				t.Fatal(err)
			}
			if _, err := batch.Register("crude oil market", 3); err != nil {
				t.Fatal(err)
			}
			var fired int
			if err := batch.Watch(1, func(d Delta) { fired++ }); err != nil {
				t.Fatal(err)
			}

			texts := feedTexts(30)
			items := make([]TimedText, len(texts))
			var loopIDs []DocID
			for i, text := range texts {
				ts := at(i * 10)
				items[i] = TimedText{Text: text, At: ts}
				id, err := loop.IngestText(text, ts)
				if err != nil {
					t.Fatal(err)
				}
				loopIDs = append(loopIDs, id)
			}
			batchIDs, err := batch.IngestBatch(items)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(batchIDs, loopIDs) {
				t.Fatalf("ids diverge: %v vs %v", batchIDs, loopIDs)
			}
			if err := sameTopK(batch.Results(1), loop.Results(1)); err != nil {
				t.Fatalf("results diverge: %v", err)
			}
			if fired != 1 {
				t.Fatalf("watch fired %d times, want 1 cumulative delta", fired)
			}
			if batch.WindowLen() != 10 {
				t.Fatalf("WindowLen = %d, want 10", batch.WindowLen())
			}

			// Empty and regressing batches.
			if ids, err := batch.IngestBatch(nil); err != nil || ids != nil {
				t.Fatalf("empty batch: %v, %v", ids, err)
			}
			_, err = batch.IngestBatch([]TimedText{{Text: "x", At: at(0)}})
			if err == nil {
				t.Fatal("time-regressing batch succeeded")
			}
			// Regression *within* a batch must fail before processing.
			before := batch.Stats().Arrivals
			_, err = batch.IngestBatch([]TimedText{
				{Text: "x", At: at(10000)},
				{Text: "y", At: at(9000)},
			})
			if err == nil {
				t.Fatal("internally regressing batch succeeded")
			}
			if got := batch.Stats().Arrivals; got != before {
				t.Fatalf("failed batch processed %d documents", got-before)
			}
		})
	}
}

// TestWithShardsValidation covers the option's interaction with
// explicit algorithm choices.
func TestWithShardsValidation(t *testing.T) {
	if _, err := New(WithCountWindow(5), WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) accepted")
	}
	if _, err := New(WithCountWindow(5), WithShards(2), WithAlgorithm(NaiveKmax)); err == nil {
		t.Fatal("WithShards + NaiveKmax accepted")
	}
	// Explicit single-threaded ITA + shards upgrades to sharded.
	e, err := New(WithCountWindow(5), WithAlgorithm(IncrementalThreshold), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Algorithm() != ShardedIncrementalThreshold {
		t.Fatalf("Algorithm() = %v", e.Algorithm())
	}
	// Auto shard count.
	auto, err := New(WithCountWindow(5), WithShards(0))
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	// Close is idempotent and safe on unsharded engines too.
	plain := newEngine(t, WithCountWindow(5))
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedSnapshotRoundTrip checks that the shard configuration
// survives Snapshot/Restore and the restored engine serves identical
// results.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	e := newEngine(t, WithCountWindow(8), WithShards(3), WithTextRetention())
	defer e.Close()
	if _, err := e.Register("crude oil market", 2); err != nil {
		t.Fatal(err)
	}
	for i, text := range feedTexts(20) {
		if _, err := e.IngestText(text, at(i*10)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := e.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Algorithm() != ShardedIncrementalThreshold {
		t.Fatalf("restored Algorithm() = %v", r.Algorithm())
	}
	if got, want := r.Results(1), e.Results(1); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored results diverge:\ngot  %v\nwant %v", got, want)
	}
}

// TestTextRingCompaction exercises the copy-on-write compaction path of
// the retained-text ring: under a small count window and a long stream
// the dead prefix must be reclaimed into a fresh backing array (never in
// place — published snapshots may alias the old one) instead of pinning
// the whole stream.
func TestTextRingCompaction(t *testing.T) {
	e := newEngine(t, WithCountWindow(5), WithTextRetention())
	// Hold a snapshot from an early boundary: compaction must not
	// disturb what it sees.
	if _, err := e.IngestText("doc number 0 unique text", at(0)); err != nil {
		t.Fatal(err)
	}
	early := e.texts.snapshot()
	for i := 1; i < 500; i++ {
		if _, err := e.IngestText(fmt.Sprintf("doc number %d unique text", i), at(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := e.texts
	if live := len(r.order) - r.head; live != 5 {
		t.Fatalf("live order region %d, want 5", live)
	}
	if len(r.order) > 200 {
		t.Fatalf("order backing grew to %d entries under a 5-document window; dead prefix not compacted", len(r.order))
	}
	// The five youngest documents keep their texts.
	for i := 495; i < 500; i++ {
		want := fmt.Sprintf("doc number %d unique text", i)
		if got := r.get(DocID(i + 1)); got != want {
			t.Fatalf("text of doc %d = %q, want %q", i+1, got, want)
		}
	}
	// Expired documents resolve to "" through the live view...
	if got := r.get(DocID(1)); got != "" {
		t.Fatalf("expired doc resolves to %q through the live view", got)
	}
	// ...while the old snapshot still serves its boundary's text.
	if got := early.get(DocID(1)); got != "doc number 0 unique text" {
		t.Fatalf("early snapshot returned %q", got)
	}
}

// TestShardedWatch checks watches fire identically on the sharded
// engine.
func TestShardedWatch(t *testing.T) {
	e := newEngine(t, WithCountWindow(4), WithShards(2), WithTextRetention())
	defer e.Close()
	q, err := e.Register("breaking alert", 2)
	if err != nil {
		t.Fatal(err)
	}
	var entered []DocID
	if err := e.Watch(q, func(d Delta) {
		for _, m := range d.Entered {
			entered = append(entered, m.Doc)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("no match here", at(0)); err != nil {
		t.Fatal(err)
	}
	id, err := e.IngestText("breaking news alert", at(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(entered) != 1 || entered[0] != id {
		t.Fatalf("entered = %v, want [%d]", entered, id)
	}
}
