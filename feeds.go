package ita

import (
	"ita/internal/corpus"
	"ita/internal/vsm"
)

// defaultWeighter returns the paper's cosine weighting.
func defaultWeighter() vsm.Weighter { return vsm.Cosine{} }

// NewsFeed generates small deterministic English-like news articles —
// a demonstration stream for the examples and for trying the engine
// without a corpus on disk.
type NewsFeed struct {
	inner *corpus.Newswire
}

// NewNewsFeed returns a deterministic article generator.
func NewNewsFeed(seed int64) *NewsFeed {
	return &NewsFeed{inner: corpus.NewNewswire(seed)}
}

// NewsTopics lists the topics Article accepts.
func NewsTopics() []string { return corpus.Topics() }

// Article generates one article on the given topic; unknown topics fall
// back to a random one.
func (f *NewsFeed) Article(topic string) string { return f.inner.Article(topic) }

// Mixed generates an article on a random topic, returning the topic
// alongside the text.
func (f *NewsFeed) Mixed() (topic, text string) { return f.inner.Mixed() }

// LoadTextDir reads every file with one of the given extensions under
// dir as one document each, sorted by path. It is the simplest way to
// replay an on-disk corpus through an Engine.
func LoadTextDir(dir string, exts ...string) ([]RawDoc, error) {
	return corpus.LoadDir(dir, exts...)
}

// LoadTRECFile parses a TREC-style SGML file (the format of the WSJ
// collection the paper streams) into raw documents.
func LoadTRECFile(path string) ([]RawDoc, error) {
	return corpus.LoadTREC(path)
}

// RawDoc is a loaded document: a name (file path or DOCNO) and its
// text.
type RawDoc = corpus.RawDoc
