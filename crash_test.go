package ita

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"ita/internal/faults"
	"ita/internal/wal"
)

// This file is the crash-point fault-injection suite of the durability
// subsystem. Three fault models are swept systematically:
//
//   - byte truncation (TestCrashPointByteSweep): a recorded run's log is
//     cut after every byte N and reopened; recovery must always succeed
//     and land exactly on the state after the last operation whose
//     record survived — prefix consistency at record granularity, with
//     no acked-durable epoch ever lost;
//   - live write failure (TestLiveWALWriteFailure): the segment file
//     starts erroring (including short writes) after byte N; every
//     operation from then on must fail cleanly — no panic — and a
//     reopen of the directory must recover a prefix-consistent state;
//   - interrupted checkpoints (TestCheckpointPhaseCrashes): the
//     directory is photographed between every crash-atomic phase of a
//     checkpoint (tmp written, renamed, segment rotated, GC'd) and each
//     photograph must recover the same state as the uninterrupted run.

// withWALHooks injects test hooks into a durable engine's config.
func withWALHooks(h *walTestHooks) Option {
	return func(c *config) error { c.walHooks = h; return nil }
}

// sweepConfigs is the engine grid every fault model runs over: serial,
// epoch-batched, and sharded+batched.
var sweepConfigs = []struct {
	name string
	opts []Option
}{
	{"serial", []Option{WithCountWindow(8)}},
	{"batched", []Option{WithCountWindow(8), WithBatchSize(4)}},
	{"sharded_batched", []Option{WithCountWindow(8), WithShards(2), WithBatchSize(4)}},
}

// recordRun drives a deterministic workload through a durable engine
// and an in-memory reference, returning the reference state after every
// operation (refStates[i] = state after op i; refStates[0] = initial)
// and the durable log offset after every operation.
func recordRun(t *testing.T, durable, ref *Engine, ops int) (refStates []engineState, offsets []int64) {
	t.Helper()
	refStates = append(refStates, captureState(ref))
	offsets = append(offsets, durable.wal.log.Offset())
	for i := 1; i <= ops; i++ {
		driveOps(t, i, i+1, durable, ref)
		refStates = append(refStates, captureState(ref))
		offsets = append(offsets, durable.wal.log.Offset())
	}
	return refStates, offsets
}

// TestCrashPointByteSweep cuts the write-ahead log after every byte of
// a recorded run and asserts every reopen recovers the exact reference
// state of the longest operation prefix on disk — ResultsAll, Stats,
// Queries, window and id sequences all byte-identical. Acked
// durability follows: the log offset recorded when operation i returned
// is <= any N at or past it, so its state is never rolled back.
func TestCrashPointByteSweep(t *testing.T) {
	for _, tc := range sweepConfigs {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := append(append([]Option{}, tc.opts...),
				WithDurability(DurabilityEpochSync), WithCheckpointEvery(0))
			durable, err := Open(dir, opts...)
			if err != nil {
				t.Fatal(err)
			}
			ref := newEngine(t, tc.opts...)
			defer ref.Close()
			refStates, _ := recordRun(t, durable, ref, 45)
			durable.crashForTest()

			data, err := os.ReadFile(wal.SegmentPath(dir, 0))
			if err != nil {
				t.Fatal(err)
			}
			full := wal.Scan(data)
			if full.Torn {
				t.Fatal("recorded run left a torn log")
			}
			// stateAt[n] = index of the reference state expected after
			// recovering the byte prefix [:n]: the number of state-bearing
			// records fully contained in it (each operation logs exactly
			// one, as its first record).
			stateAt := make([]int, len(data)+1)
			rec, ops := 0, 0
			for n := 0; n <= len(data); n++ {
				for rec < len(full.Ends) && full.Ends[rec] <= int64(n) {
					if full.Records[rec].Kind.StateBearing() {
						ops++
					}
					rec++
				}
				stateAt[n] = ops
			}
			if ops != len(refStates)-1 {
				t.Fatalf("log holds %d operations, reference ran %d", ops, len(refStates)-1)
			}

			ckpt, err := os.ReadFile(wal.CheckpointPath(dir, 0))
			if err != nil {
				t.Fatal(err)
			}
			stride := 1
			if testing.Short() {
				stride = 17
			}
			crashDirs := t.TempDir()
			for n := 0; n <= len(data); n += stride {
				cdir := filepath.Join(crashDirs, fmt.Sprintf("n%d", n))
				if err := os.MkdirAll(cdir, 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(wal.CheckpointPath(cdir, 0), ckpt, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(wal.SegmentPath(cdir, 0), data[:n], 0o644); err != nil {
					t.Fatal(err)
				}
				r, err := Open(cdir)
				if err != nil {
					t.Fatalf("crash point %d: reopen failed: %v", n, err)
				}
				requireSameState(t, captureState(r), refStates[stateAt[n]],
					fmt.Sprintf("crash point %d (op prefix %d)", n, stateAt[n]))
				r.crashForTest()
				os.RemoveAll(cdir)
			}
		})
	}
}

// TestLiveWALWriteFailure sweeps the first failing byte of the segment
// file across a run. From the failure on, operations must return errors
// — never panic, never report success for work the log will not
// remember — and reopening the directory must recover a state no older
// than the last successful operation.
func TestLiveWALWriteFailure(t *testing.T) {
	// -1 is faults.File's already-full disk: every write fails with
	// zero bytes landed.
	limits := []int{-1, 1, 7, 8, 20, 64, 150, 300, 600, 1200}
	for _, tc := range sweepConfigs {
		tc := tc
		for _, limit := range limits {
			limit := limit
			t.Run(fmt.Sprintf("%s/limit%d", tc.name, limit), func(t *testing.T) {
				dir := t.TempDir()
				hooks := &walTestHooks{
					create: func(path string) (wal.File, error) {
						f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR, 0o644)
						if err != nil {
							return nil, err
						}
						if filepath.Ext(path) == ".log" {
							// The disk-fault wrapper of internal/faults is the
							// generalization of the failingFile these sweeps began
							// with; Limit is its hard byte cap (disk-full model).
							return &faults.File{F: f, Limit: limit}, nil
						}
						return f, nil
					},
				}
				opts := append(append([]Option{}, tc.opts...),
					WithDurability(DurabilityEpochSync), WithCheckpointEvery(0), withWALHooks(hooks))
				durable, err := Open(dir, opts...)
				if err != nil {
					t.Fatal(err)
				}
				ref := newEngine(t, tc.opts...)
				defer ref.Close()

				lastGood := captureState(ref)
				failedAt := -1
				for i := 1; i <= 30; i++ {
					if err := driveOneOp(durable, i); err != nil {
						failedAt = i
						break
					}
					if err := driveOneOp(ref, i); err != nil {
						t.Fatalf("reference op %d: %v", i, err)
					}
					lastGood = captureState(ref)
				}
				if failedAt < 0 {
					t.Fatalf("write failure at byte %d never surfaced", limit)
				}
				durable.crashForTest()

				r, err := Open(dir)
				if err != nil {
					t.Fatalf("reopen after live failure: %v", err)
				}
				defer r.Close()
				got := captureState(r)
				// The recovered state must be at least the last acked op
				// (EpochSync synced it before the op returned) and at most
				// one op ahead (the failing op's state record may have made
				// it to disk before the marker write failed).
				if !sameOrOneAhead(t, got, lastGood, failedAt, ref) {
					t.Fatalf("limit %d: recovered state matches neither op %d nor op %d",
						limit, failedAt-1, failedAt)
				}
			})
		}
	}
}

// driveOneOp applies the same deterministic op schedule as driveOps but
// to a single engine, returning the first error instead of failing the
// test — the live fault sweep needs errors to be observable.
func driveOneOp(e *Engine, i int) error {
	switch {
	case i%7 == 0:
		_, err := e.Register(fmt.Sprintf("crude oil market report %d", i%3), 1+i%3)
		return err
	case i%13 == 0:
		return e.Advance(at(i * 10))
	case i%5 == 0:
		_, err := e.IngestBatch([]TimedText{
			{Text: fmt.Sprintf("solar turbine grid %d", i%4), At: at(i * 10)},
			{Text: fmt.Sprintf("tanker export pipeline %d", i%5), At: at(i*10 + 1)},
		})
		return err
	default:
		_, err := e.IngestText(fmt.Sprintf("oil price futures demand %d supply %d", i%6, i%4), at(i*10+5))
		return err
	}
}

// sameOrOneAhead reports whether got equals lastGood, or equals the
// reference advanced by the failing op (whose record may have been
// durably logged even though the op reported an error).
func sameOrOneAhead(t *testing.T, got, lastGood engineState, failedAt int, ref *Engine) bool {
	t.Helper()
	if statesEqual(got, lastGood) {
		return true
	}
	// Advance a throwaway clone of the reference by the failed op: replay
	// it via snapshot round-trip so ref itself is not perturbed.
	clone := cloneEngine(t, ref)
	defer clone.Close()
	if err := driveOneOp(clone, failedAt); err != nil {
		return false
	}
	return statesEqual(got, captureState(clone))
}

func statesEqual(a, b engineState) bool {
	return fmt.Sprintf("%+v", a) == fmt.Sprintf("%+v", b)
}

// cloneEngine duplicates an engine through the exact-state snapshot.
func cloneEngine(t *testing.T, e *Engine) *Engine {
	t.Helper()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- e.Snapshot(pw)
		pw.Close()
	}()
	clone, err := Restore(pr)
	if err != nil {
		t.Fatalf("clone restore: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("clone snapshot: %v", err)
	}
	return clone
}

// TestCheckpointPhaseCrashes photographs the durable directory between
// every crash-atomic phase of every checkpoint in a run, then recovers
// each photograph and asserts it lands exactly on the reference state
// at that operation — an interrupted checkpoint is invisible.
func TestCheckpointPhaseCrashes(t *testing.T) {
	dir := t.TempDir()
	shots := t.TempDir()
	type shot struct {
		phase string
		dir   string
		op    int
	}
	var (
		curOp int
		taken []shot
	)
	hooks := &walTestHooks{
		checkpointPhase: func(phase string) {
			sdir := filepath.Join(shots, fmt.Sprintf("s%d_%s", len(taken), phase))
			if err := copyDir(dir, sdir); err != nil {
				t.Errorf("photograph %s: %v", phase, err)
				return
			}
			taken = append(taken, shot{phase: phase, dir: sdir, op: curOp})
		},
	}
	durable, err := Open(dir, WithCountWindow(10), WithShards(2), WithBatchSize(3),
		WithCheckpointEvery(6), withWALHooks(hooks))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(10), WithShards(2), WithBatchSize(3))
	defer ref.Close()

	refStates := []engineState{captureState(ref)}
	for i := 1; i <= 80; i++ {
		curOp = i
		driveOps(t, i, i+1, durable, ref)
		refStates = append(refStates, captureState(ref))
	}
	durable.crashForTest()

	if len(taken) < 3*4 { // genesis writes no phases; expect several checkpoints
		t.Fatalf("only %d checkpoint phases photographed", len(taken))
	}
	phasesSeen := map[string]bool{}
	for _, s := range taken {
		phasesSeen[s.phase] = true
		// Photographs taken before the genesis checkpoint committed are
		// (near-)empty directories; recovering those is a fresh create and
		// needs the configuration, exactly like the real crash it models.
		// Later photographs accept the same options via the compatibility
		// check.
		r, err := Open(s.dir, WithCountWindow(10), WithShards(2), WithBatchSize(3))
		if err != nil {
			t.Fatalf("recover photograph %s at op %d: %v", s.phase, s.op, err)
		}
		requireSameState(t, captureState(r), refStates[s.op],
			fmt.Sprintf("checkpoint phase %q at op %d", s.phase, s.op))
		r.crashForTest()
	}
	for _, want := range []string{"begin", "written", "renamed", "rotated", "done"} {
		if !phasesSeen[want] {
			t.Fatalf("phase %q never photographed (saw %v)", want, phasesSeen)
		}
	}
}

// copyDir copies a flat directory (the WAL layout has no subdirs).
func copyDir(src, dst string) error {
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return err
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		return err
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// TestCorruptMidLogRecoversPrefix flips a byte in the middle of the
// log; recovery must stop cleanly at the corruption, recovering the
// record prefix before it — never panic, never serve garbage.
func TestCorruptMidLogRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	durable, err := Open(dir, WithCountWindow(8), WithDurability(DurabilityOff), WithCheckpointEvery(0))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(8))
	defer ref.Close()
	refStates, _ := recordRun(t, durable, ref, 25)
	durable.crashForTest()

	segPath := wal.SegmentPath(dir, 0)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	full := wal.Scan(data)
	mid := len(data) / 2
	data[mid] ^= 0xff
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with corrupt middle: %v", err)
	}
	defer r.Close()
	// Expected: the op prefix whose records all precede the corruption.
	ops := 0
	for i, end := range full.Ends {
		if end > int64(mid) {
			break
		}
		if full.Records[i].Kind.StateBearing() {
			ops++
		}
	}
	requireSameState(t, captureState(r), refStates[ops], "corrupt middle")
}
