// Package ita implements continuous text search over high-volume
// document streams, reproducing Mouratidis & Pang, "An Incremental
// Threshold Method for Continuous Text Search Queries" (ICDE 2009).
//
// A monitoring server ingests a stream of documents and hosts standing
// text queries. Each query continuously reports the k documents inside
// a sliding window — count-based ("the 500 most recent documents") or
// time-based ("the last 15 minutes") — that are most similar to its
// search terms under cosine similarity (an Okapi BM25 variant is also
// provided).
//
// The default engine is the paper's Incremental Threshold Algorithm
// (ITA): an impact-ordered inverted index over the window with one
// "local threshold" per (query, term) pair. Arriving and expiring
// documents are filtered through per-term threshold trees so that only
// the small fraction of updates that can possibly change some result is
// ever processed; results are repaired incrementally by rolling
// thresholds up (arrivals) or resuming the top-k search downwards
// (expirations). A Naïve baseline — score every arrival against every
// query, rescan on result underflow, with the top-kmax view maintenance
// of Yi et al. — is included for comparison and used by the benchmark
// harness.
//
// # Quick start
//
//	eng, err := ita.New(ita.WithCountWindow(500))
//	if err != nil { ... }
//	q, err := eng.Register("weapons of mass destruction", 10)
//	if err != nil { ... }
//	for doc := range feed {
//		if _, err := eng.IngestText(doc.Text, doc.Time); err != nil { ... }
//		for _, m := range eng.Results(q) {
//			fmt.Printf("%.3f %s\n", m.Score, m.Text)
//		}
//	}
//
// Engines are safe for concurrent use. Mutating operations serialize on
// an internal mutex, matching the paper's single-CPU cost model; reads
// are served wait-free from published epoch views (see "Published views
// and read consistency" below) and never contend with ingestion.
//
// # Sharded parallel maintenance
//
// WithShards(n) replaces the single-threaded maintenance engine with a
// query-sharded parallel one (Algorithm ShardedIncrementalThreshold):
// registered queries are partitioned across n shards — n = 0 picks
// runtime.GOMAXPROCS — each owning the threshold trees, result lists
// and local thresholds of its queries, while the inverted index and
// FIFO store remain a single-writer structure owned by the
// coordinator. Every arrival or expiration is a two-phase event: the
// coordinator first mutates the index, then all shards concurrently
// run their per-query maintenance against the now-quiescent index.
// Because ITA couples queries only through the read-only index,
// results are identical to the single-threaded engine — the
// equivalence suite drives both against a brute-force oracle under the
// race detector. Choose WithShards when many standing queries make
// per-event maintenance, not index mutation, the dominant cost, and
// there are spare cores to fan out to; call Close to release the shard
// workers, and prefer IngestBatch for high-volume feeds. See README.md
// for the architecture.
//
// # Epoch-batched ingestion
//
// WithBatchSize(B) lifts event processing from event-serial to
// epoch-batched: IngestText calls buffer their analyzed documents and
// the engine applies them as one epoch — a single net index-mutation
// pass (documents that arrive and expire within the epoch never touch
// the inverted lists), batch-wide deduplication of affected queries,
// and at most one refill search plus one roll-up per query per epoch
// instead of per event. IngestBatch always routes through the epoch
// path. An epoch flushes when B documents accumulate, on Flush, or
// before any operation that needs the stream applied (Register,
// Unregister, Advance, Snapshot, Close).
//
// Per-query results at every epoch boundary equal event-serial
// processing of the same stream (documents tying exactly at a query's
// k-th score may resolve to either tied document — both are correct);
// the race-enabled equivalence suites enforce this for epoch sizes
// B ∈ {1, 4, 64} across shard counts S ∈ {1, 2, 8}. The trade is
// bounded read staleness: Results, Stats and WindowLen reflect flushed
// epochs only, at most B−1 documents behind, and watchers receive one
// coalesced delta per query per epoch. Combine with WithShards to also
// amortize the per-event fan-out barrier — one two-phase barrier per
// epoch instead of per event. BENCH_BATCH.json records the measured
// epoch-size sweep (itabench -exp batch).
//
// # Published views and read consistency
//
// For the ITA engines (single-threaded and sharded), Results,
// ResultsAll, Stats, WindowLen, Queries, DictionarySize and QueryText
// never acquire the engine lock. At every publication boundary — an
// epoch flush (every ingest when unbatched), Register, Unregister,
// Advance, and restore — the engine publishes an immutable view of each
// changed query's top-k (a frozen copy-on-publish snapshot), a
// copy-on-write snapshot of the retained texts, and frozen operation
// counters; the facade swaps one atomic pointer. A read loads that
// pointer and copies off-lock, so serving throughput is independent of
// ingest volume and a stalled reader can never stall the stream.
//
// The consistency model is read-your-epoch:
//
//   - A read observes the last completed publication boundary (or a
//     newer one). With WithBatchSize(B) that is the last flushed epoch,
//     at most B−1 documents behind the stream; unbatched, every ingest
//     is a boundary.
//   - States internal to an epoch are never visible — the same
//     guarantee watch deltas already carry, so polling Results and
//     subscribing via Watch tell one story.
//   - Every published per-query view is byte-identical to what a read
//     under the engine lock would have returned at that same boundary;
//     the race-enabled metamorphic equivalence suite and the
//     concurrent-reader boundary test enforce exactly this.
//   - ResultsAll enumerates queries weakly consistently: when racing a
//     flush, two entries may come from adjacent boundaries, but each
//     entry individually is a real boundary state.
//
// The Naïve baseline engines have no published views and read under the
// engine lock.
//
// # Watching result changes
//
// Watch(id, fn) subscribes a callback to one query's result changes —
// the paper's alerting use case. The delivery guarantee is exact:
// watchers receive at most one delta per query per epoch, the net
// difference between the query's results at consecutive published
// epoch boundaries, delivered in epoch order after the triggering call
// releases the engine lock. Three properties are load-bearing and
// regression-tested:
//
//   - The baseline of a new watcher is the last published boundary —
//     the same state collectDeltas diffs against — never a live
//     mid-epoch result, so the first delta a watcher receives is a
//     boundary-to-boundary difference even when Watch lands mid-epoch
//     (e.g. on a follower whose replicated chunk stops short of the
//     epoch marker).
//   - A watcher callback that panics cannot eat other queries' deltas:
//     the undelivered tail of the batch is re-enqueued, in order,
//     before the panic propagates. The panicking query's own delta is
//     consumed (its callback ran), preserving at-most-once per epoch.
//   - Deltas of one epoch are delivered in ascending query id, and
//     consecutive epochs deliver in epoch order even when different
//     goroutines flush them.
//
// The metamorphic suite reconstructs every watched query's result set
// purely from its delta stream and requires it equal to the published
// boundary result at every comparison point, across the whole engine
// grid (serial, sharded, batched, durable, crash/reopen).
//
// # Durability
//
// Open(dir, opts...) (equivalently New with WithWAL(dir)) makes the
// engine durable: every mutating operation — Register, Unregister,
// IngestText, IngestBatch, Advance, explicit Flush — is appended to a
// CRC-framed write-ahead log in dir before it is applied, and every
// completed epoch boundary appends a marker record. Automatic
// checkpoints (WithCheckpointEvery, default every 256 boundaries) write
// the engine's full snapshot next to the log, rotate to a fresh segment
// and delete the old one, bounding both disk usage and recovery time;
// Checkpoint forces one before a planned shutdown.
//
// Reopening the same directory recovers the engine: the newest
// checkpoint is restored and the log tail replayed through the same
// code paths live calls use. Because version-2 snapshots carry the
// exact incremental state (per-query thresholds and result lists, not
// just the window), recovery is byte-identical, not merely
// result-equivalent: ResultsAll, Stats, the id sequences, a partially
// buffered epoch, and every future maintenance decision match an
// engine that never crashed. The crash-point suites enforce this by
// truncating a recorded log after every byte, photographing every
// checkpoint phase, and crashing engines mid-run inside the metamorphic
// generator.
//
// What a crash can cost is set by WithDurability:
//
//   - DurabilityEpochSync (default): the log is fsynced at every epoch
//     boundary, so once a mutating call returns, its epoch survives OS
//     and power failures. One fsync per boundary.
//   - DurabilityAlways: fsync after every record — the strongest and
//     slowest policy.
//   - DurabilityOff: never fsync. A process crash still loses nothing
//     (the OS page cache survives the process); an OS crash recovers
//     some earlier epoch boundary.
//
// Torn-tail semantics: a crash can leave a partially written final
// record. Recovery treats the first invalid frame (short, bad CRC,
// undecodable) as the end of the log, truncates it, and resumes
// appending at the clean boundary — the recovered state is always an
// exact operation prefix of the crashed engine's history, never a
// guess. An interrupted checkpoint is equally harmless: the snapshot
// commits atomically via rename, and recovery prefers the newest
// complete checkpoint while garbage-collecting leftovers.
//
// # Replication and failover
//
// A durable primary can ship its WAL to warm standbys.
// StartReplication(addr) serves the log over TCP; OpenFollower(dir,
// primaryAddr, opts...) opens a read-only engine that bootstraps from
// the primary's newest checkpoint, then applies the byte-identical
// stream as it is written, publishing views at the same epoch
// boundaries the primary published. Reads — Results, ResultsAll,
// Stats, Watch — all work on the standby; mutating calls return
// ErrReadOnly. Promote flips a standby into a writable primary after
// stopping its replication client; the promoted engine may itself call
// StartReplication to serve the next generation of followers.
// ReplicationStats exposes roles, per-follower ack positions and lag.
//
// The replication consistency model extends read-your-epoch across
// machines:
//
//   - A standby's state is always an exact epoch-boundary prefix of the
//     primary's history — the same guarantee crash recovery gives,
//     because the follower applies the primary's own log bytes through
//     the recovery code paths. States internal to an epoch are never
//     visible on a standby, and its WAL is a byte-identical mirror of
//     the primary's.
//   - Replication is asynchronous: a read on a standby may trail the
//     primary by the replication lag (ReplicationStats reports it; the
//     itaserver /readyz endpoint gates on it), but it never observes a
//     state the primary did not publish.
//   - An epoch the follower has acknowledged survives failover: Promote
//     includes every acked epoch, so promoting after the primary dies
//     loses at most the unacknowledged suffix — never acknowledged
//     history, and never a torn intermediate state.
//   - A follower that falls behind the primary's WAL retention window
//     (WithReplicationRetention) resyncs from a shipped checkpoint; the
//     result is the same byte-identical prefix guarantee, entered at a
//     newer boundary.
//
// The metamorphic replication suite drives a primary, a live standby
// and a never-faulted reference through the full operation generator
// while a deterministic fault schedule (internal/faults) drops, delays,
// truncates and partitions the replication link, killing and rejoining
// either side, and requires all three byte-identical at every
// acknowledged boundary — including promotion under a network
// partition.
//
// # Cluster mode
//
// ITA's per-query threshold maintenance never couples two queries, so
// the standing query set partitions exactly: internal/cluster runs N
// nodes that each ingest the full document stream but own only the
// placement-hash slice of the queries (the same hash the in-process
// sharded engine uses), behind a router that fans writes to every node
// and merges reads. Results are byte-identical to one process, not
// approximately so, because the router keeps every node's term
// dictionary id-identical: a registration is applied on its owner with
// an explicit id (RegisterWithID) and interned everywhere else without
// maintenance state (AlignRegister, WAL-logged so a node's own warm
// standby inherits the alignment), which pins the term-id order that
// float score accumulation depends on. The router stamps one arrival
// time per document so time windows expire identically, routes
// Results to the placement owner, concatenates and re-sorts
// ResultsAll, and cross-checks merged Stats — stream counters must be
// equal on every node, per-query counters sum. Each node can run its
// own replication standby; a promoted standby swaps into the router
// slot-for-slot, invisible to placement. The cluster metamorphic
// suite drives 2- and 3-node clusters (each node with a live standby
// under fault injection) against the single-process oracle and
// requires byte-identity at every quiesced boundary, through node
// kill/rejoin and promote-under-partition (TestMetamorphicCluster,
// replayable via ITA_CLUSTER_SEED).
//
// # Scaling to millions of queries
//
// Internally the engine never keys per-query state by the public
// QueryID. Each registration is assigned a dense internal id — an index
// into stable-addressed slab arenas holding the query's thresholds and
// result list — recycled through a free list when the query
// unregisters. External ids appear exactly at the API boundary: one
// concurrent ext→dense lookup (shared between the write path and the
// wait-free readers) translates on the way in, and published result
// snapshots carry their owning external id so a reader racing a slot
// reuse can never observe another query's view. Everything below that
// boundary — threshold-tree entries, affected-query deduplication,
// epoch work queues, publication slots — is dense-id array indexing
// with no per-event map traffic, and identical query texts share one
// immutable term vector.
//
// The per-term threshold trees are frequency-adaptive and θ-ordered:
// each (query, term) entry carries the score threshold θ the term's
// contribution must beat, entries are kept in ascending-θ order, and
// every tree maintains its minimum θ. An arriving or expiring
// document's probe therefore costs what it can affect, not what is
// registered: a whole term is skipped in O(1) when its min-θ exceeds
// the term's contribution, an ordered probe walks only the beatable
// prefix and exits at the first unbeatable threshold, and in the
// epoch-batched path a term whose min-θ exceeds the epoch's maximum
// contribution is skipped once for the entire epoch. Zero-floor
// queries (every bound trivially beatable) are scored during the probe
// itself: their shared-term contributions accumulate in ascending term
// order — bit-identical to a full evaluation — so the dominant case
// never touches the scoring scratch map at all.
//
// Query populations per term are Zipfian, so the vast majority of
// trees hold a handful of thresholds and are stored as compact sorted
// slices (24 bytes per entry, binary-search probes); a tree crossing
// ~128 entries promotes itself to a skip list and demotes back on
// shrink, with hysteresis. The crossover was picked by measurement
// (BenchmarkTierCrossover in internal/threshtree): the slice tier is
// 5-9.5x faster below ~64 entries and CPU parity is reached between 64
// and 128, where the slice tier still uses about a quarter of the
// memory — so promotion happens exactly where pointer structure starts
// to pay for itself. Both tiers maintain the identical total order;
// the metamorphic equivalence suite runs the engine grid against a
// skiplist-pinned reference and requires byte-identical results and
// operation counters at every boundary.
//
// itabench -exp scale measures the result (BENCH_SCALE.json): engine
// memory per registered query and steady-state ingest events/s at
// 10k/100k/1M standing queries, with earlier layouts' sweeps embedded
// as chained baselines. The report records probe hits and score
// computations per event alongside throughput, plus the ingest curve
// ratio (events/s at the largest query count over the smallest) — the
// flatness number that catches a probe-cost regression as a cliff.
//
// # Compressed posting storage
//
// The window side scales the same way: posting lists default to a
// block-compressed layout (WithPostingLayout, LayoutBlocked). Each
// per-term list is an array of ~128-entry flat blocks in impact order,
// carrying per-block max-weight/min-key/count metadata; packed blocks
// FOR-code doc ids against the block minimum and store weights exactly,
// as the smaller of sortable-bits frame-of-reference or a per-block
// weight dictionary. Point mutations decode their target block once
// and splice it as raw entries — the slice layout's cost — and every
// epoch boundary repacks what its batch left decoded, so the
// epoch-batched pipeline converges to fully packed lists. Iterators
// switch from per-entry extraction to whole-block decode once a
// descent runs deep, which makes large-window threshold searches
// faster than the uncompressed layout while using under half the
// memory (BENCH_WINDOW.json, itabench -exp window: 60.8% fewer
// bytes/posting and 0.89x cold-search latency at the paper-scale
// 100k-document window). LayoutSlices retains the original layout;
// the metamorphic suites pin their oracle engines to it, so every
// equivalence run doubles as a blocked-versus-slice differential twin.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison of every figure.
package ita
