package ita

import (
	"fmt"

	"ita/internal/model"
)

// Delta describes how one query's result changed as a consequence of a
// single stream event (IngestText or Advance). Entered lists documents
// newly present in the top-k, in result order; Exited lists documents
// that left it (by expiring or by being displaced).
type Delta struct {
	Query   QueryID
	Entered []Match
	Exited  []DocID
}

// WatchFunc receives result deltas. It is invoked synchronously after
// the triggering call returns the engine lock, in registration order;
// it may call back into the Engine.
type WatchFunc func(Delta)

type watchState struct {
	fn   WatchFunc
	last []model.ScoredDoc
}

// Watch subscribes fn to result changes of query id. The continuous
// query model makes this the natural alerting primitive: the paper's
// security analyst wants the moment an email enters a threat profile's
// top-k, not a poll loop. One watcher per query; watching again
// replaces the previous watcher.
func (e *Engine) Watch(id QueryID, fn WatchFunc) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cur, ok := e.inner.Result(id)
	if !ok {
		return fmt.Errorf("ita: watch: unknown query %d", id)
	}
	if e.watches == nil {
		e.watches = make(map[QueryID]*watchState)
	}
	e.watches[id] = &watchState{fn: fn, last: cur}
	return nil
}

// Unwatch removes the watcher of query id, reporting whether one
// existed.
func (e *Engine) Unwatch(id QueryID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.watches[id]; !ok {
		return false
	}
	delete(e.watches, id)
	return true
}

// collectDeltas compares every watched query's current result against
// the last delivered one and returns the non-empty deltas along with
// their callbacks. Must be called with e.mu held.
func (e *Engine) collectDeltas() []pendingDelta {
	if len(e.watches) == 0 {
		return nil
	}
	var out []pendingDelta
	for id, ws := range e.watches {
		cur, ok := e.inner.Result(id)
		if !ok {
			// Query unregistered out from under the watch; drop it.
			delete(e.watches, id)
			continue
		}
		delta := diffResults(id, ws.last, cur, e.texts)
		if len(delta.Entered) == 0 && len(delta.Exited) == 0 {
			continue
		}
		ws.last = cur
		out = append(out, pendingDelta{fn: ws.fn, delta: delta})
	}
	return out
}

type pendingDelta struct {
	fn    WatchFunc
	delta Delta
}

func deliver(deltas []pendingDelta) {
	for _, p := range deltas {
		p.fn(p.delta)
	}
}

func diffResults(id QueryID, prev, cur []model.ScoredDoc, texts *textRing) Delta {
	prevSet := make(map[model.DocID]bool, len(prev))
	for _, d := range prev {
		prevSet[d.Doc] = true
	}
	curSet := make(map[model.DocID]bool, len(cur))
	delta := Delta{Query: id}
	for _, d := range cur {
		curSet[d.Doc] = true
		if !prevSet[d.Doc] {
			m := Match{Doc: d.Doc, Score: d.Score}
			if texts != nil {
				m.Text = texts.get(d.Doc)
			}
			delta.Entered = append(delta.Entered, m)
		}
	}
	for _, d := range prev {
		if !curSet[d.Doc] {
			delta.Exited = append(delta.Exited, d.Doc)
		}
	}
	return delta
}
