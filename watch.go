package ita

import (
	"fmt"
	"sort"
	"sync/atomic"

	"ita/internal/model"
)

// Delta describes how one query's result changed across one epoch — an
// unbatched IngestText or Advance call, an IngestBatch call, or a
// WithBatchSize flush. Entered lists documents newly present in the
// top-k, in result order; Exited lists documents that left it (by
// expiring or by being displaced).
//
// Delivery guarantee: watchers receive at most one delta per query per
// epoch, the net difference between the query's result at consecutive
// epoch boundaries. Intermediate states inside an epoch are never
// delivered — a document that enters and leaves the top-k within one
// epoch produces no notification at all, and a burst of arrivals that
// repeatedly reshuffles a result produces a single coalesced delta
// instead of one per event. Deltas of one epoch are delivered in
// ascending query id, after the triggering call released the engine
// lock; consecutive epochs deliver in epoch order even when different
// goroutines flush them (a background Flush ticker racing an ingest
// cannot reorder a watcher's view).
type Delta struct {
	Query   QueryID
	Entered []Match
	Exited  []DocID
}

// WatchFunc receives result deltas. It is invoked synchronously after
// the triggering call releases the engine lock; it may call back into
// the Engine.
type WatchFunc func(Delta)

type watchState struct {
	fn   WatchFunc
	last []model.ScoredDoc
	// gone is set (under e.mu) when the watcher is removed or replaced.
	// deliverBatch re-checks it immediately before each invocation, so a
	// delta that was queued while the watcher was live is suppressed once
	// Unwatch (or a replacing Watch) has returned, instead of invoking a
	// callback the caller already detached. A callback that had already
	// begun when the flag flipped still completes — stopping it would
	// require holding a lock across user code.
	gone atomic.Bool
	// prevSet and curSet are diff scratch, reused across epochs so the
	// steady state (a watched query whose result did not change) performs
	// zero allocations per boundary. Only collectDeltas touches them,
	// under e.mu.
	prevSet, curSet map[model.DocID]bool
}

// diff computes the boundary-to-boundary delta from ws.last to cur.
// Must be called with e.mu held (it mutates the watcher's scratch sets).
func (ws *watchState) diff(id QueryID, cur []model.ScoredDoc, texts *textRing) Delta {
	if ws.prevSet == nil {
		ws.prevSet = make(map[model.DocID]bool, len(ws.last)+1)
		ws.curSet = make(map[model.DocID]bool, len(cur)+1)
	} else {
		clear(ws.prevSet)
		clear(ws.curSet)
	}
	for _, d := range ws.last {
		ws.prevSet[d.Doc] = true
	}
	delta := Delta{Query: id}
	for _, d := range cur {
		ws.curSet[d.Doc] = true
		if !ws.prevSet[d.Doc] {
			m := Match{Doc: d.Doc, Score: d.Score}
			if texts != nil {
				m.Text = texts.get(d.Doc)
			}
			delta.Entered = append(delta.Entered, m)
		}
	}
	for _, d := range ws.last {
		if !ws.curSet[d.Doc] {
			delta.Exited = append(delta.Exited, d.Doc)
		}
	}
	return delta
}

// Watch subscribes fn to result changes of query id. The continuous
// query model makes this the natural alerting primitive: the paper's
// security analyst wants the moment an email enters a threat profile's
// top-k, not a poll loop. One watcher per query; watching again
// replaces the previous watcher.
func (e *Engine) Watch(id QueryID, fn WatchFunc) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	// The baseline is the last published boundary — the same source
	// collectDeltas diffs against. Reading the live inner result here
	// would baseline a watcher registered mid-epoch (say, on a follower
	// whose replicated chunk stopped short of the epoch marker) on an
	// in-epoch transient, and the transient-to-boundary difference
	// would be lost from its delta stream.
	cur, ok := e.boundaryResultLocked(id)
	if !ok {
		return fmt.Errorf("ita: watch: unknown query %d", id)
	}
	if e.watches == nil {
		e.watches = make(map[QueryID]*watchState)
	}
	// Replacing a watcher tombstones the old state so any of its deltas
	// still sitting in the delivery queue are dropped rather than invoking
	// the superseded callback after this call returns.
	e.dropWatchLocked(id)
	e.watches[id] = &watchState{fn: fn, last: cur}
	return nil
}

// Unwatch removes the watcher of query id, reporting whether one
// existed. Deltas already queued for the watcher but not yet delivered
// are discarded; a callback that was already executing when Unwatch was
// called may still complete concurrently.
func (e *Engine) Unwatch(id QueryID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropWatchLocked(id)
}

// dropWatchLocked removes and tombstones the watcher of query id,
// reporting whether one existed. Every removal path (Unwatch, a
// replacing Watch, unregister, a diff against a vanished query) funnels
// through here so the delivery queue's identity check stays in force.
// Must be called with e.mu held.
func (e *Engine) dropWatchLocked(id QueryID) bool {
	ws, ok := e.watches[id]
	if !ok {
		return false
	}
	ws.gone.Store(true)
	delete(e.watches, id)
	return true
}

// collectDeltas publishes the boundary just reached to wait-free
// readers, then compares every watched query's current result against
// the last delivered one and returns the non-empty deltas along with
// their callbacks, in ascending query id so an epoch's notifications
// are delivered deterministically. Every mutating operation funnels
// through here, which is what keeps the published views and the watch
// stream in lockstep: both observe exactly the epoch boundaries,
// never in-epoch transients. Must be called with e.mu held.
func (e *Engine) collectDeltas() []pendingDelta {
	e.publishLocked()
	if len(e.watches) == 0 {
		return nil
	}
	var out []pendingDelta
	for id, ws := range e.watches {
		cur, ok := e.boundaryResultLocked(id)
		if !ok {
			// Query unregistered out from under the watch; drop it.
			e.dropWatchLocked(id)
			continue
		}
		delta := ws.diff(id, cur, e.texts)
		if len(delta.Entered) == 0 && len(delta.Exited) == 0 {
			continue
		}
		ws.last = cur
		out = append(out, pendingDelta{ws: ws, delta: delta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].delta.Query < out[j].delta.Query })
	return out
}

// pendingDelta references the watcher itself rather than capturing its
// callback: capturing fn at enqueue time is precisely the
// delivery-after-Unwatch bug — a queued delta would invoke a callback
// the caller had already detached. Delivery re-resolves liveness through
// ws.gone at invocation time instead.
type pendingDelta struct {
	ws    *watchState
	delta Delta
}

// boundaryResultLocked reads a query's result at the just-published
// boundary. For publishing engines it borrows the frozen view directly
// — no copy, since both the published slice and ws.last are immutable —
// and for the Naïve fallback it copies from the inner engine. Must be
// called with e.mu held, after publishLocked.
func (e *Engine) boundaryResultLocked(id QueryID) ([]model.ScoredDoc, bool) {
	if ps := e.pub.Load(); ps != nil {
		f, ok := ps.reader.Result(id)
		if !ok {
			return nil, false
		}
		return f.Docs, true
	}
	return e.inner.Result(id)
}

// queueDeltasLocked appends one epoch's deltas to the delivery queue.
// Must be called with e.mu held: e.mu serializes epochs, so enqueueing
// under it keeps the queue in epoch order even when several goroutines
// (say, a background flush ticker racing an ingest) flush concurrently.
func (e *Engine) queueDeltasLocked(deltas []pendingDelta) {
	if len(deltas) == 0 {
		return
	}
	e.dmu.Lock()
	e.deliveryQ = append(e.deliveryQ, deltas...)
	e.dmu.Unlock()
}

// deliverQueued drains the delivery queue, invoking watch callbacks in
// queue (epoch) order. Only one goroutine drains at a time; a second
// caller finding a drain in progress leaves its deltas for the active
// drainer, which loops until the queue is empty — this is what makes
// the cross-epoch delivery order a real guarantee under concurrent
// flushes, not just within one goroutine. Must be called without e.mu
// held; callbacks run with no engine locks held and may re-enter the
// engine (a re-entrant flush simply enqueues for the active drainer).
func (e *Engine) deliverQueued() {
	for {
		e.dmu.Lock()
		if e.delivering || len(e.deliveryQ) == 0 {
			e.dmu.Unlock()
			return
		}
		e.delivering = true
		batch := e.deliveryQ
		e.deliveryQ = nil
		e.dmu.Unlock()
		e.deliverBatch(batch)
	}
}

// deliverBatch invokes one drained batch's callbacks. The drainer flag
// is released via defer so a panicking callback (possibly recovered
// upstream, e.g. by net/http) cannot wedge delivery for the rest of the
// engine's life; the panic itself still propagates. The deltas after
// the panicking one are pushed back to the front of the queue first:
// collectDeltas already advanced their watchers' cursors when it
// produced them, so dropping them here would silently lose
// notifications — the next flush would diff against a boundary those
// watchers never saw.
func (e *Engine) deliverBatch(batch []pendingDelta) {
	i := 0
	defer func() {
		e.dmu.Lock()
		e.delivering = false
		if i < len(batch) {
			// Panicked at batch[i]: that delta's callback ran (partially);
			// re-enqueueing it would break at-most-once-per-epoch, so only
			// the untouched tail goes back. Prepending keeps epoch order
			// ahead of anything queued during this drain; the full-slice
			// expression forces a fresh array so the append cannot
			// scribble over batch's backing storage.
			e.deliveryQ = append(batch[i+1:len(batch):len(batch)], e.deliveryQ...)
		}
		e.dmu.Unlock()
	}()
	for ; i < len(batch); i++ {
		if batch[i].ws.gone.Load() {
			continue
		}
		batch[i].ws.fn(batch[i].delta)
	}
}
