package ita

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"ita/internal/wal"
)

// crashForTest abandons the engine the way a crash would: shard worker
// goroutines are stopped (so tests do not leak them) and the log file
// handle is closed, but nothing is flushed to the engine, no final sync
// is issued and no checkpoint runs. Bytes already written to the log
// remain visible to a reopen, exactly like a killed process's page
// cache; loss of unsynced bytes is modelled separately by the
// byte-truncation sweeps in crash_test.go.
func (e *Engine) crashForTest() {
	e.mu.Lock()
	if c, ok := e.inner.(interface{ Close() error }); ok {
		c.Close()
	}
	if e.wal != nil && e.wal.log != nil {
		e.wal.log.Close()
	}
	e.mu.Unlock()
}

// engineState is the complete read surface the crash-recovery
// equivalence is asserted over.
type engineState struct {
	Results   []QueryResult
	Stats     Stats
	Queries   int
	Window    int
	Dict      int
	NextDoc   DocID
	NextQuery QueryID
}

func captureState(e *Engine) engineState {
	e.mu.Lock()
	nextDoc, nextQuery := e.nextDoc, e.nextQuery
	e.mu.Unlock()
	return engineState{
		Results:   e.ResultsAll(),
		Stats:     e.Stats(),
		Queries:   e.Queries(),
		Window:    e.WindowLen(),
		Dict:      e.DictionarySize(),
		NextDoc:   nextDoc,
		NextQuery: nextQuery,
	}
}

func requireSameState(t *testing.T, got, want engineState, context string) {
	t.Helper()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: state diverged\n got: %+v\nwant: %+v", context, got, want)
	}
}

// driveOps runs a deterministic mixed workload against every engine in
// engs, keeping them in lockstep. Returns the registered query ids
// still live.
func driveOps(t *testing.T, from, to int, engs ...*Engine) []QueryID {
	t.Helper()
	var live []QueryID
	for i := from; i < to; i++ {
		switch {
		case i%7 == 0:
			text := fmt.Sprintf("crude oil market report %d", i%3)
			var want QueryID
			for j, e := range engs {
				id, err := e.Register(text, 1+i%3)
				if err != nil {
					t.Fatalf("op %d: register: %v", i, err)
				}
				if j == 0 {
					want = id
				} else if id != want {
					t.Fatalf("op %d: query id %d vs %d", i, id, want)
				}
			}
			live = append(live, want)
		case i%11 == 0 && len(live) > 2:
			id := live[0]
			live = live[1:]
			for _, e := range engs {
				if !e.Unregister(id) {
					t.Fatalf("op %d: unregister %d failed", i, id)
				}
			}
		case i%13 == 0:
			for _, e := range engs {
				if err := e.Advance(at(i * 10)); err != nil {
					t.Fatalf("op %d: advance: %v", i, err)
				}
			}
		case i%5 == 0:
			items := []TimedText{
				{Text: fmt.Sprintf("solar turbine grid %d", i%4), At: at(i * 10)},
				{Text: fmt.Sprintf("tanker export pipeline %d", i%5), At: at(i*10 + 1)},
			}
			for _, e := range engs {
				if _, err := e.IngestBatch(items); err != nil {
					t.Fatalf("op %d: batch: %v", i, err)
				}
			}
		default:
			text := fmt.Sprintf("oil price futures demand %d supply %d", i%6, i%4)
			for _, e := range engs {
				if _, err := e.IngestText(text, at(i*10+5)); err != nil {
					t.Fatalf("op %d: ingest: %v", i, err)
				}
			}
		}
	}
	return live
}

// TestOpenFreshCrashReopen is the core recovery equivalence: a durable
// engine and an identically-configured in-memory reference run the same
// workload; the durable one crashes and reopens, and must be
// byte-identical to the reference — ResultsAll, Stats, Queries, window,
// id sequences — both at the crash boundary and while both engines keep
// evolving afterwards.
func TestOpenFreshCrashReopen(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"serial", []Option{WithCountWindow(12)}},
		{"batched", []Option{WithCountWindow(12), WithBatchSize(4)}},
		{"sharded_batched", []Option{WithCountWindow(12), WithShards(2), WithBatchSize(4)}},
		{"time_window", []Option{WithTimeWindow(150 * time.Millisecond)}},
		{"retained", []Option{WithCountWindow(12), WithTextRetention()}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			durable, err := Open(dir, tc.opts...)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			ref := newEngine(t, tc.opts...)
			defer ref.Close()

			driveOps(t, 1, 60, durable, ref)
			requireSameState(t, captureState(durable), captureState(ref), "pre-crash")

			durable.crashForTest()
			reopened, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer reopened.Close()
			requireSameState(t, captureState(reopened), captureState(ref), "post-recovery")

			// The recovered engine must keep evolving identically, proving
			// the internal state (thresholds, result lists, buffered epoch,
			// counters) was reconstructed exactly, not just the visible
			// results.
			driveOps(t, 60, 100, reopened, ref)
			requireSameState(t, captureState(reopened), captureState(ref), "post-recovery evolution")
		})
	}
}

// TestReopenAfterCleanClose recovers from a Close()d engine (final
// epoch flushed and synced).
func TestReopenAfterCleanClose(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(8), WithBatchSize(3))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(8), WithBatchSize(3))
	defer ref.Close()
	driveOps(t, 1, 40, e, ref)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Close flushes the partial epoch; mirror it on the reference.
	if err := ref.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	requireSameState(t, captureState(r), captureState(ref), "after clean close")
}

// TestCheckpointRotation drives enough boundaries through a small
// checkpoint interval to force several rotations, asserting the
// directory stays bounded (one checkpoint, one segment) and recovery
// from the rotated state is exact.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(10), WithShards(2), WithCheckpointEvery(8))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(10), WithShards(2))
	defer ref.Close()
	driveOps(t, 1, 120, e, ref)

	st, err := wal.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Checkpoints) != 1 || len(st.Segments) != 1 || len(st.Tmp) != 0 || len(st.Foreign) != 0 {
		t.Fatalf("rotation left dir unbounded: %+v", st)
	}
	if st.Checkpoints[0] == 0 {
		t.Fatalf("no checkpoint ever rotated past genesis")
	}
	if st.Checkpoints[0] != st.Segments[0] {
		t.Fatalf("checkpoint %d and segment %d out of step", st.Checkpoints[0], st.Segments[0])
	}

	e.crashForTest()
	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	requireSameState(t, captureState(r), captureState(ref), "post-rotation recovery")
	driveOps(t, 120, 150, r, ref)
	requireSameState(t, captureState(r), captureState(ref), "post-rotation evolution")
}

// TestExplicitCheckpointMakesReopenTailless: after Checkpoint() the
// segment must be empty, so reopen replays nothing.
func TestExplicitCheckpointMakesReopenTailless(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(8), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(8), WithBatchSize(4))
	defer ref.Close()
	driveOps(t, 1, 30, e, ref)
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := ref.Flush(); err != nil { // Checkpoint flushed the partial epoch
		t.Fatal(err)
	}
	st, err := wal.ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Segments) != 1 {
		t.Fatalf("segments: %v", st.Segments)
	}
	seg, err := os.Stat(wal.SegmentPath(dir, st.Segments[0]))
	if err != nil {
		t.Fatal(err)
	}
	if seg.Size() != 0 {
		t.Fatalf("segment holds %d bytes after explicit checkpoint", seg.Size())
	}
	e.crashForTest()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	requireSameState(t, captureState(r), captureState(ref), "after explicit checkpoint")
}

// TestOpenTornTail appends garbage to the segment; reopen must recover
// the clean prefix and truncate the tail so appending resumes at a
// record boundary.
func TestOpenTornTail(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(8))
	defer ref.Close()
	driveOps(t, 1, 30, e, ref)
	e.crashForTest()

	segPath := wal.SegmentPath(dir, 0)
	f, err := os.OpenFile(segPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xbe, 0xef, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer r.Close()
	requireSameState(t, captureState(r), captureState(ref), "torn tail")
	// The tail was truncated: further ops and another reopen must work.
	driveOps(t, 30, 40, r, ref)
	r.crashForTest()
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("second reopen: %v", err)
	}
	defer r2.Close()
	requireSameState(t, captureState(r2), captureState(ref), "after tail truncation")
}

// TestOpenConfigMismatch: conflicting options on recovery must fail
// with a clean error, matching options must succeed.
func TestOpenConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(10), WithBatchSize(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("crude oil", 2); err != nil {
		t.Fatal(err)
	}
	e.crashForTest()

	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"window size", []Option{WithCountWindow(20)}},
		{"window kind", []Option{WithTimeWindow(time.Second)}},
		{"batch", []Option{WithCountWindow(10), WithBatchSize(8)}},
		{"algorithm", []Option{WithCountWindow(10), WithAlgorithm(NaivePlain)}},
		{"shards", []Option{WithCountWindow(10), WithShards(4)}},
		{"stemming", []Option{WithCountWindow(10), WithoutStemming()}},
		{"okapi", []Option{WithCountWindow(10), WithOkapiScoring(30)}},
		{"retention", []Option{WithCountWindow(10), WithTextRetention()}},
		{"seed", []Option{WithCountWindow(10), WithSeed(99)}},
	} {
		if _, err := Open(dir, tc.opts...); err == nil {
			t.Fatalf("%s conflict accepted", tc.name)
		}
	}

	// The original options (and no options at all) both recover.
	r, err := Open(dir, WithCountWindow(10), WithBatchSize(4))
	if err != nil {
		t.Fatalf("matching options rejected: %v", err)
	}
	r.crashForTest()
	r2, err := Open(dir)
	if err != nil {
		t.Fatalf("bare reopen rejected: %v", err)
	}
	r2.crashForTest()
}

// TestNewWithWALDelegatesToOpen: New(WithWAL(dir)) must behave exactly
// like Open(dir) — create, then recover.
func TestNewWithWALDelegatesToOpen(t *testing.T) {
	dir := t.TempDir()
	e, err := New(WithWAL(dir), WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("solar grid", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar grid storage", at(10)); err != nil {
		t.Fatal(err)
	}
	want := captureState(e)
	e.crashForTest()
	r, err := New(WithWAL(dir))
	if err != nil {
		t.Fatalf("recover through New: %v", err)
	}
	defer r.Close()
	requireSameState(t, captureState(r), want, "New(WithWAL) recovery")
}

// TestWatchSurvivesRecoveryPickup: watchers are process-local and not
// persisted, but attaching one to a recovered engine must deliver
// deltas against the recovered boundary.
func TestWatchSurvivesRecoveryPickup(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(dir, WithCountWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	q, err := e.Register("tanker export", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("tanker export delayed", at(10)); err != nil {
		t.Fatal(err)
	}
	e.crashForTest()

	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []Delta
	if err := r.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatalf("watch recovered query: %v", err)
	}
	if _, err := r.IngestText("second tanker export announcement", at(20)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Query != q || len(got[0].Entered) != 1 {
		t.Fatalf("recovered watch deltas: %+v", got)
	}
}

// TestSnapshotRestoreIsExact: with snapshot v2 a plain
// Snapshot/Restore round trip preserves Stats and all future
// maintenance decisions byte-for-byte, for the serial and sharded
// engines.
func TestSnapshotRestoreIsExact(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"serial", []Option{WithCountWindow(10)}},
		{"sharded_batched", []Option{WithCountWindow(10), WithShards(3), WithBatchSize(4)}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			e := newEngine(t, tc.opts...)
			defer e.Close()
			driveOps(t, 1, 50, e)
			var buf bytes.Buffer
			if err := e.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			r, err := Restore(&buf)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			requireSameState(t, captureState(r), captureState(e), "restore")
			driveOps(t, 50, 90, r, e)
			requireSameState(t, captureState(r), captureState(e), "post-restore evolution")
		})
	}
}

// TestOpenLeavesForeignFilesAlone: files the WAL does not recognize in
// its directory must survive every open, recovery and checkpoint — a
// user pointing the engine at a shared directory must never lose data.
func TestOpenLeavesForeignFilesAlone(t *testing.T) {
	dir := t.TempDir()
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Open(dir, WithCountWindow(8), WithCheckpointEvery(4))
	if err != nil {
		t.Fatal(err)
	}
	ref := newEngine(t, WithCountWindow(8))
	defer ref.Close()
	driveOps(t, 1, 40, e, ref) // crosses several checkpoint rotations
	e.crashForTest()
	r, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(foreign)
	if err != nil || string(data) != "precious" {
		t.Fatalf("foreign file damaged: %q, %v", data, err)
	}
}

// TestOpenRefusesSegmentsWithoutCheckpoint: a directory whose only
// checkpoint is gone but whose segment still holds real records is
// damaged beyond safe recovery — opening it would silently drop those
// operations. (A segment with no valid records at all is a different
// story: startup cleanup deletes it, see TestOpenCleansCrashLeftovers.)
func TestOpenRefusesSegmentsWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "wal-0.log"))
	if err != nil {
		t.Fatal(err)
	}
	l := wal.NewLog(f, 0, wal.DurabilityOff)
	if err := l.Append(&wal.Record{Kind: wal.KindDoc, Doc: 1, At: 1, Text: "orphaned operation"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Open(dir, WithCountWindow(4)); err == nil {
		t.Fatal("segment with records but no checkpoint accepted")
	}
}

// TestOpenCleansCrashLeftovers photographs every leftover shape a
// crash can strand in a WAL directory and proves startup cleanup
// removes it: an orphaned checkpoint temporary next to live state, a
// temporary alone in an otherwise fresh directory (an interrupted
// first checkpoint), a temporary plus an empty genesis segment, and a
// segment holding only garbage bytes. In every case Open succeeds, the
// leftovers are gone afterwards, and recoverable state is untouched.
func TestOpenCleansCrashLeftovers(t *testing.T) {
	requireGone := func(t *testing.T, paths ...string) {
		t.Helper()
		for _, p := range paths {
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("leftover %s survived startup cleanup (stat err: %v)", p, err)
			}
		}
	}
	requireUsable := func(t *testing.T, e *Engine) {
		t.Helper()
		id, err := e.Register("crude oil", 2)
		if err != nil {
			t.Fatalf("register on cleaned engine: %v", err)
		}
		if _, err := e.IngestText("crude oil market", at(1)); err != nil {
			t.Fatalf("ingest on cleaned engine: %v", err)
		}
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		if got := e.Results(id); len(got) == 0 {
			t.Fatal("cleaned engine serves no results")
		}
	}

	t.Run("tmp next to live state", func(t *testing.T) {
		dir := t.TempDir()
		e, err := Open(dir, WithCountWindow(8), WithDurability(DurabilityOff))
		if err != nil {
			t.Fatal(err)
		}
		driveOps(t, 0, 40, e)
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
		pre := captureState(e)
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		tmp := wal.CheckpointTmpPath(dir, 99)
		if err := os.WriteFile(tmp, []byte("interrupted checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen with orphaned tmp: %v", err)
		}
		defer r.Close()
		requireGone(t, tmp)
		requireSameState(t, captureState(r), pre, "state after tmp cleanup")
	})

	t.Run("tmp alone", func(t *testing.T) {
		dir := t.TempDir()
		tmp := wal.CheckpointTmpPath(dir, 0)
		if err := os.WriteFile(tmp, []byte("torn first checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := Open(dir, WithCountWindow(8), WithDurability(DurabilityOff))
		if err != nil {
			t.Fatalf("open over lone tmp: %v", err)
		}
		defer e.Close()
		requireGone(t, tmp)
		requireUsable(t, e)
	})

	t.Run("tmp plus empty segment", func(t *testing.T) {
		dir := t.TempDir()
		tmp := wal.CheckpointTmpPath(dir, 0)
		seg := wal.SegmentPath(dir, 0)
		if err := os.WriteFile(tmp, []byte("torn first checkpoint"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := Open(dir, WithCountWindow(8), WithDurability(DurabilityOff))
		if err != nil {
			t.Fatalf("open over tmp + empty segment: %v", err)
		}
		defer e.Close()
		requireGone(t, tmp)
		requireUsable(t, e)
	})

	t.Run("garbage segment", func(t *testing.T) {
		dir := t.TempDir()
		seg := wal.SegmentPath(dir, 0)
		if err := os.WriteFile(seg, []byte("\x00\x01garbage, not a frame"), 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := Open(dir, WithCountWindow(8), WithDurability(DurabilityOff))
		if err != nil {
			t.Fatalf("open over garbage segment: %v", err)
		}
		defer e.Close()
		requireUsable(t, e)
	})
}
