package ita

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"ita/internal/cluster"
	"ita/internal/core"
	"ita/internal/faults"
)

// This file extends the metamorphic suite to multi-node cluster mode:
// the byte-driven op sequence runs against a K-node cluster behind a
// merge router — every node a durable engine with its own warm standby
// replicating through its own faults.Network — and against a single
// never-faulted in-memory reference. Per-query threshold maintenance
// never couples two queries, and registration alignment keeps every
// node's term dictionary id-identical, so the cluster's merged state
// must equal the reference byte for byte (results, merged stats,
// window, dictionary, id cursors) at every quiesced epoch boundary.
// opCrash alternates standby kill/rejoin with node kill -9 + recovery
// from its own WAL; every run ends with a node lost for good and its
// standby promoted under a network partition and swapped into the
// router in its place.

// clusterMember is one node slot: a durable primary engine, its WAL
// directory, its replication address, and a warm standby connected
// through a per-node fault domain.
type clusterMember struct {
	dir  string
	opts []Option
	eng  *Engine
	addr string
	netw *faults.Network
	fDir string
	f    *Engine
}

// captureClusterState merges per-node captured states into the
// single-engine view: results concatenate across the partition (each
// id lives on exactly one node) in ascending id order, per-query
// maintenance counters sum while stream counters must agree, query
// counts sum, and the stream-derived gauges (window, dictionary, id
// cursors) must be identical on every node.
func captureClusterState(t *testing.T, context string, engs ...*Engine) engineState {
	t.Helper()
	parts := make([]engineState, len(engs))
	stats := make([]core.Stats, len(engs))
	for i, e := range engs {
		parts[i] = captureState(e)
		stats[i] = parts[i].Stats
	}
	merged := parts[0]
	merged.Results = nil
	for i, p := range parts {
		merged.Results = append(merged.Results, p.Results...)
		if i == 0 {
			continue
		}
		merged.Queries += p.Queries
		if p.Window != merged.Window || p.Dict != merged.Dict ||
			p.NextDoc != merged.NextDoc || p.NextQuery != merged.NextQuery {
			t.Fatalf("%s: node %d stream state {w=%d dict=%d nextDoc=%d nextQuery=%d} disagrees with node 0 {w=%d dict=%d nextDoc=%d nextQuery=%d}",
				context, i, p.Window, p.Dict, p.NextDoc, p.NextQuery,
				merged.Window, merged.Dict, merged.NextDoc, merged.NextQuery)
		}
	}
	ms, err := cluster.MergeStats(stats)
	if err != nil {
		t.Fatalf("%s: %v", context, err)
	}
	merged.Stats = ms
	sortQueryResults(merged.Results)
	return merged
}

func sortQueryResults(rs []QueryResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j-1].Query > rs[j].Query; j-- {
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}

// runClusterSequence drives one decoded op sequence through a k-node
// cluster router and the in-memory reference, asserting full merged
// equivalence (nodes and standbys) at every opResults boundary.
func runClusterSequence(t *testing.T, data []byte, seed int64, k int, cfg faults.Config) {
	t.Helper()
	ops := decodeOps(data)
	if len(ops) == 0 {
		return
	}
	var pol Option
	if len(data) > 0 && data[0]%2 == 1 {
		pol = WithTimeWindow(120 * time.Millisecond)
	} else {
		pol = WithCountWindow(10)
	}
	base := []Option{pol}
	if len(data) > 1 && data[1]%3 == 0 {
		base = append(base, WithBatchSize(4))
	}

	// The reference runs the slice posting layout while the cluster nodes
	// keep the default blocked layout, so every cell of this suite is
	// also a differential twin for the compressed postings.
	ref, err := New(append([]Option{WithPostingLayout(LayoutSlices)}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	members := make([]*clusterMember, k)
	for i := range members {
		m := &clusterMember{
			dir:  t.TempDir(),
			fDir: t.TempDir(),
			netw: faults.NewNetwork(faults.NewSchedule(seed+int64(i)*101, cfg)),
		}
		m.opts = append(append([]Option{}, base...),
			WithDurability(DurabilityOff), WithCheckpointEvery(16),
			WithReplicationRetention(4), testReplTuning(fmt.Sprintf("node%d", i)))
		m.eng, err = Open(m.dir, m.opts...)
		if err != nil {
			t.Fatalf("open node %d: %v", i, err)
		}
		m.addr = listenFaultPrimary(t, m.eng, "127.0.0.1:0", m.netw)
		m.f = openFaultFollower(t, m.fDir, m.addr, m.netw)
		members[i] = m
	}
	defer func() {
		for _, m := range members {
			if m.f != nil {
				m.f.Close()
			}
			m.eng.Close()
		}
	}()

	nodes := make([]cluster.Node, k)
	for i, m := range members {
		nodes[i] = cluster.Local(m.eng)
	}
	router, err := cluster.NewRouter(nodes)
	if err != nil {
		t.Fatal(err)
	}

	engines := func() []*Engine {
		out := make([]*Engine, len(members))
		for i, m := range members {
			out[i] = m.eng
		}
		return out
	}
	standbys := func() []*Engine {
		out := make([]*Engine, len(members))
		for i, m := range members {
			out[i] = m.f
		}
		return out
	}

	compare := func(step string) {
		if err := router.Flush(); err != nil {
			t.Fatalf("%s: cluster flush: %v", step, err)
		}
		if err := ref.Flush(); err != nil {
			t.Fatalf("%s: reference flush: %v", step, err)
		}
		for i, m := range members {
			waitReplCaughtUp(t, m.f, m.eng, 30*time.Second)
			requireMirroredSegment(t, m.eng, m.f, fmt.Sprintf("%s: node %d", step, i))
		}
		want := captureState(ref)
		requireSameState(t, captureClusterState(t, step+": nodes", engines()...), want, step+": cluster vs reference")
		requireSameState(t, captureClusterState(t, step+": standbys", standbys()...), want, step+": standbys vs reference")
		// The router's own merged read path must agree with the manual
		// merge: same stats, same totals.
		rs, err := router.Stats()
		if err != nil {
			t.Fatalf("%s: router stats: %v", step, err)
		}
		if rs != want.Stats {
			t.Fatalf("%s: router merged stats %+v != reference %+v", step, rs, want.Stats)
		}
		st, err := router.Status()
		if err != nil {
			t.Fatalf("%s: router status: %v", step, err)
		}
		if st.Queries != want.Queries || st.Window != want.Window || st.Dict != want.Dict {
			t.Fatalf("%s: router status %+v != reference {q=%d w=%d dict=%d}", step, st, want.Queries, want.Window, want.Dict)
		}
	}

	var live []QueryID
	clock := 0
	crashes := 0

	for step, op := range ops {
		ctx := fmt.Sprintf("op %d", step)
		switch op.kind {
		case opIngest:
			clock += op.dtMs
			id, err := router.IngestText(op.text, at(clock))
			if err != nil {
				t.Fatalf("%s: cluster ingest: %v", ctx, err)
			}
			want, err := ref.IngestText(op.text, at(clock))
			if err != nil {
				t.Fatalf("%s: reference ingest: %v", ctx, err)
			}
			if id != want {
				t.Fatalf("%s: doc id %d vs %d", ctx, id, want)
			}
		case opIngestBatch:
			items := make([]TimedText, len(op.batch))
			for j, text := range op.batch {
				clock += op.dtMs
				items[j] = TimedText{Text: text, At: at(clock)}
			}
			if _, err := router.IngestBatch(items); err != nil {
				t.Fatalf("%s: cluster batch: %v", ctx, err)
			}
			if _, err := ref.IngestBatch(items); err != nil {
				t.Fatalf("%s: reference batch: %v", ctx, err)
			}
		case opRegister:
			id, err := router.Register(op.text, op.k)
			if err != nil {
				t.Fatalf("%s: cluster register: %v", ctx, err)
			}
			want, err := ref.Register(op.text, op.k)
			if err != nil {
				t.Fatalf("%s: reference register: %v", ctx, err)
			}
			if id != want {
				t.Fatalf("%s: query id %d vs %d", ctx, id, want)
			}
			live = append(live, id)
		case opUnregister:
			if len(live) == 0 {
				continue
			}
			idx := op.qsel % len(live)
			id := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			ok, err := router.Unregister(id)
			if err != nil || !ok {
				t.Fatalf("%s: cluster unregister %d: ok=%v err=%v", ctx, id, ok, err)
			}
			if !ref.Unregister(id) {
				t.Fatalf("%s: reference unregister %d failed", ctx, id)
			}
		case opAdvance:
			clock += op.dtMs
			if err := router.Advance(at(clock)); err != nil {
				t.Fatalf("%s: cluster advance: %v", ctx, err)
			}
			if err := ref.Advance(at(clock)); err != nil {
				t.Fatalf("%s: reference advance: %v", ctx, err)
			}
		case opFlush:
			if err := router.Flush(); err != nil {
				t.Fatalf("%s: cluster flush: %v", ctx, err)
			}
			if err := ref.Flush(); err != nil {
				t.Fatalf("%s: reference flush: %v", ctx, err)
			}
		case opResults:
			compare(ctx)
		case opCrash:
			crashes++
			m := members[crashes%k]
			if crashes%2 == 1 {
				// Kill and rejoin the node's standby from its directory.
				if err := m.f.Close(); err != nil {
					t.Fatalf("%s: close standby: %v", ctx, err)
				}
				m.f = openFaultFollower(t, m.fDir, m.addr, m.netw)
			} else {
				// Kill -9 the node itself mid-stream: listener dies, nothing
				// is flushed, and the reopened engine must recover
				// byte-identically from its own WAL before rejoining the
				// router on the same port.
				pre := captureState(m.eng)
				crashPrimaryForTest(m.eng)
				ne, err := Open(m.dir, m.opts...)
				if err != nil {
					t.Fatalf("%s: reopen node: %v", ctx, err)
				}
				requireSameState(t, captureState(ne), pre, ctx+": node crash recovery")
				m.eng = ne
				m.addr = listenFaultPrimary(t, m.eng, m.addr, m.netw)
				router.SwapNode(crashes%k, cluster.Local(m.eng))
			}
		case opCheckpoint:
			for i, m := range members {
				if err := m.eng.Checkpoint(); err != nil {
					t.Fatalf("%s: checkpoint node %d: %v", ctx, i, err)
				}
			}
		}
	}
	compare("end of run")

	// Finale: lose node 0 for good and fail its slot over under a
	// partition. The cluster was just quiesced, so the standby holds the
	// node's exact boundary state; the partition guarantees promotion
	// cannot consult the dead primary. The promoted engine swaps into
	// the router slot — placement depends only on the slot index, so
	// routing is untouched — and the cluster must remain in lockstep
	// with the reference as writes continue.
	loss := members[0]
	loss.netw.Heal()
	loss.netw.Partition()
	crashPrimaryForTest(loss.eng)
	if err := loss.f.Promote(); err != nil {
		t.Fatalf("promote under partition: %v", err)
	}
	loss.eng = loss.f
	loss.f = nil
	router.SwapNode(0, cluster.Local(loss.eng))

	finale := func(step string) {
		if err := router.Flush(); err != nil {
			t.Fatalf("%s: cluster flush: %v", step, err)
		}
		if err := ref.Flush(); err != nil {
			t.Fatalf("%s: reference flush: %v", step, err)
		}
		want := captureState(ref)
		requireSameState(t, captureClusterState(t, step, engines()...), want, step)
	}
	finale("promoted cluster vs reference")

	for i := 0; i < 30; i++ {
		switch {
		case i%7 == 0:
			text := fmt.Sprintf("post failover query %d", i%3)
			id, err := router.Register(text, 1+i%3)
			if err != nil {
				t.Fatalf("finale op %d: cluster register: %v", i, err)
			}
			want, err := ref.Register(text, 1+i%3)
			if err != nil || id != want {
				t.Fatalf("finale op %d: register id %d vs %d (%v)", i, id, want, err)
			}
		case i%5 == 0:
			if err := router.Advance(at(5000 + i*10)); err != nil {
				t.Fatalf("finale op %d: advance: %v", i, err)
			}
			if err := ref.Advance(at(5000 + i*10)); err != nil {
				t.Fatal(err)
			}
		default:
			text := fmt.Sprintf("failover stream doc %d tanker %d", i%6, i%4)
			if _, err := router.IngestText(text, at(5000+i*10)); err != nil {
				t.Fatalf("finale op %d: ingest: %v", i, err)
			}
			if _, err := ref.IngestText(text, at(5000+i*10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	finale("promoted cluster after writes")
}

// clusterFaultGrid trades breadth against the K× process cost: a clean
// cell, the drop cell, and the mixed cell (the replication suite
// sweeps the individual fault types on a single pair).
var clusterFaultGrid = []struct {
	name string
	cfg  faults.Config
}{
	{"clean", faults.Config{}},
	{"drops", faults.Config{DropRate: 0.02}},
	{"mixed", faults.Config{DropRate: 0.01, TruncateRate: 0.01,
		DelayRate: 0.05, MaxDelay: 2 * time.Millisecond,
		PartitionRate: 0.001, PartitionFor: 25 * time.Millisecond}},
}

// TestMetamorphicCluster proves the partitioning exact: for K∈{2,3},
// a K-node cluster behind the merge router — per-node standbys under
// injected faults, node kills and rejoins included — is byte-identical
// to one engine at every quiesced boundary, and stays identical after
// losing a node and promoting its standby under partition. Replay a
// failure with ITA_CLUSTER_SEED=<seed>.
func TestMetamorphicCluster(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if env := os.Getenv("ITA_CLUSTER_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ITA_CLUSTER_SEED=%q: %v", env, err)
		}
		seeds = []int64{n}
	}
	for _, seed := range seeds {
		for _, k := range []int{2, 3} {
			for ci, cell := range clusterFaultGrid {
				seed, k, ci, cell := seed, k, ci, cell
				t.Run(fmt.Sprintf("seed=%d/k=%d/%s", seed, k, cell.name), func(t *testing.T) {
					t.Logf("replay with: ITA_CLUSTER_SEED=%d go test -run TestMetamorphicCluster", seed)
					data := make([]byte, 512)
					rand.New(rand.NewSource(seed)).Read(data)
					runClusterSequence(t, data, seed*37+int64(ci), k, cell.cfg)
				})
			}
		}
	}
}
