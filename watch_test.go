package ita

import (
	"testing"
	"time"
)

func TestWatchUnknownQuery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	if err := e.Watch(42, func(Delta) {}); err == nil {
		t.Fatal("watch on unknown query succeeded")
	}
}

func TestWatchDeliversEntries(t *testing.T) {
	e := newEngine(t, WithCountWindow(5), WithTextRetention())
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}

	if _, err := e.IngestText("the weather was mild", at(0)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("irrelevant arrival produced delta: %+v", got)
	}

	id, err := e.IngestText("a new solar turbine array", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want 1", got)
	}
	d := got[0]
	if d.Query != q || len(d.Entered) != 1 || d.Entered[0].Doc != id || len(d.Exited) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Entered[0].Text == "" {
		t.Fatal("entered match missing retained text")
	}
}

func TestWatchDeliversExits(t *testing.T) {
	e := newEngine(t, WithCountWindow(2))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.IngestText("solar turbine output rose", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	// Two unrelated docs push the match out of the 2-doc window.
	if _, err := e.IngestText("markets were calm", at(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a quiet day in parliament", at(10)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want exactly 1 (the exit)", got)
	}
	if len(got[0].Exited) != 1 || got[0].Exited[0] != id || len(got[0].Entered) != 0 {
		t.Fatalf("delta = %+v", got[0])
	}
}

func TestWatchOnAdvanceExpiry(t *testing.T) {
	e := newEngine(t, WithTimeWindow(50*time.Millisecond))
	q, err := e.Register("breaking story", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a breaking story develops", at(0)); err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(at(100)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Exited) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
}

func TestWatchCallbackMayReenterEngine(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := e.Watch(q, func(d Delta) {
		fired = true
		// Re-entrancy: reading results inside the callback must not
		// deadlock.
		_ = e.Results(q)
		_ = e.Stats()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine blades", at(0)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("watch never fired")
	}
}

func TestUnwatch(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := e.Watch(q, func(Delta) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if !e.Unwatch(q) {
		t.Fatal("Unwatch failed")
	}
	if e.Unwatch(q) {
		t.Fatal("double Unwatch succeeded")
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("unwatched callback fired")
	}
}

func TestWatchReplacesPrevious(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b int
	if err := e.Watch(q, func(Delta) { a++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { b++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", a, b)
	}
}

func TestWatchDroppedWithUnregister(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { t.Fatal("fired after unregister") }); err != nil {
		t.Fatal(err)
	}
	e.Unregister(q)
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
}

// TestWatchDeliveryOrder checks the documented guarantee that one
// epoch's deltas are delivered in ascending query id, regardless of
// registration or watch order.
func TestWatchDeliveryOrder(t *testing.T) {
	e := newEngine(t, WithCountWindow(8), WithBatchSize(4))
	var qids []QueryID
	for _, text := range []string{"solar turbine", "turbine blades", "solar panels", "turbine output", "solar farming"} {
		q, err := e.Register(text, 2)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, q)
	}
	var order []QueryID
	// Watch in reverse registration order: delivery must still be by id.
	for i := len(qids) - 1; i >= 0; i-- {
		if err := e.Watch(qids[i], func(d Delta) { order = append(order, d.Query) }); err != nil {
			t.Fatal(err)
		}
	}
	// One epoch that matches every query.
	for i := 0; i < 4; i++ {
		if _, err := e.IngestText("solar turbine blades panels output farming", at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != len(qids) {
		t.Fatalf("delivered %d deltas, want %d", len(order), len(qids))
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("delivery order %v not ascending by query id", order)
		}
	}
}

// TestWatchPanicDoesNotWedgeDelivery checks that a panicking callback
// (recovered by the caller, as net/http handlers do) does not leave the
// delivery drainer marked busy forever — later deltas must still fire.
func TestWatchPanicDoesNotWedgeDelivery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	panicked := false
	var delivered int
	if err := e.Watch(q, func(Delta) {
		delivered++
		if !panicked {
			panicked = true
			panic("watcher bug")
		}
	}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { _ = recover() }()
		_, _ = e.IngestText("solar turbine output", at(0))
	}()
	if !panicked {
		t.Fatal("first delta never fired")
	}
	// A pure-match document displaces the top-1, forcing a second delta.
	if _, err := e.IngestText("solar turbine", at(10)); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d deltas, want 2 (delivery wedged after panic)", delivered)
	}
}

func TestWatchDisplacementProducesEnterAndExit(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	q, err := e.Register("turbine", 1) // top-1: displacement swaps the slot
	if err != nil {
		t.Fatal(err)
	}
	weak, err := e.IngestText("one turbine among many other words entirely unrelated", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	strong, err := e.IngestText("turbine turbine turbine", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
	d := got[0]
	if len(d.Entered) != 1 || d.Entered[0].Doc != strong {
		t.Fatalf("entered = %+v, want doc %d", d.Entered, strong)
	}
	if len(d.Exited) != 1 || d.Exited[0] != weak {
		t.Fatalf("exited = %+v, want doc %d", d.Exited, weak)
	}
}
