package ita

import (
	"testing"
	"time"
)

func TestWatchUnknownQuery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	if err := e.Watch(42, func(Delta) {}); err == nil {
		t.Fatal("watch on unknown query succeeded")
	}
}

func TestWatchDeliversEntries(t *testing.T) {
	e := newEngine(t, WithCountWindow(5), WithTextRetention())
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}

	if _, err := e.IngestText("the weather was mild", at(0)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("irrelevant arrival produced delta: %+v", got)
	}

	id, err := e.IngestText("a new solar turbine array", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want 1", got)
	}
	d := got[0]
	if d.Query != q || len(d.Entered) != 1 || d.Entered[0].Doc != id || len(d.Exited) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Entered[0].Text == "" {
		t.Fatal("entered match missing retained text")
	}
}

func TestWatchDeliversExits(t *testing.T) {
	e := newEngine(t, WithCountWindow(2))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.IngestText("solar turbine output rose", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	// Two unrelated docs push the match out of the 2-doc window.
	if _, err := e.IngestText("markets were calm", at(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a quiet day in parliament", at(10)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want exactly 1 (the exit)", got)
	}
	if len(got[0].Exited) != 1 || got[0].Exited[0] != id || len(got[0].Entered) != 0 {
		t.Fatalf("delta = %+v", got[0])
	}
}

func TestWatchOnAdvanceExpiry(t *testing.T) {
	e := newEngine(t, WithTimeWindow(50*time.Millisecond))
	q, err := e.Register("breaking story", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a breaking story develops", at(0)); err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(at(100)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Exited) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
}

func TestWatchCallbackMayReenterEngine(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := e.Watch(q, func(d Delta) {
		fired = true
		// Re-entrancy: reading results inside the callback must not
		// deadlock.
		_ = e.Results(q)
		_ = e.Stats()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine blades", at(0)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("watch never fired")
	}
}

func TestUnwatch(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := e.Watch(q, func(Delta) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if !e.Unwatch(q) {
		t.Fatal("Unwatch failed")
	}
	if e.Unwatch(q) {
		t.Fatal("double Unwatch succeeded")
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("unwatched callback fired")
	}
}

func TestWatchReplacesPrevious(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b int
	if err := e.Watch(q, func(Delta) { a++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { b++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", a, b)
	}
}

func TestWatchDroppedWithUnregister(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { t.Fatal("fired after unregister") }); err != nil {
		t.Fatal(err)
	}
	e.Unregister(q)
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDisplacementProducesEnterAndExit(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	q, err := e.Register("turbine", 1) // top-1: displacement swaps the slot
	if err != nil {
		t.Fatal(err)
	}
	weak, err := e.IngestText("one turbine among many other words entirely unrelated", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	strong, err := e.IngestText("turbine turbine turbine", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
	d := got[0]
	if len(d.Entered) != 1 || d.Entered[0].Doc != strong {
		t.Fatalf("entered = %+v, want doc %d", d.Entered, strong)
	}
	if len(d.Exited) != 1 || d.Exited[0] != weak {
		t.Fatalf("exited = %+v, want doc %d", d.Exited, weak)
	}
}
