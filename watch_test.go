package ita

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ita/internal/model"
)

func TestWatchUnknownQuery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	if err := e.Watch(42, func(Delta) {}); err == nil {
		t.Fatal("watch on unknown query succeeded")
	}
}

func TestWatchDeliversEntries(t *testing.T) {
	e := newEngine(t, WithCountWindow(5), WithTextRetention())
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}

	if _, err := e.IngestText("the weather was mild", at(0)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("irrelevant arrival produced delta: %+v", got)
	}

	id, err := e.IngestText("a new solar turbine array", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want 1", got)
	}
	d := got[0]
	if d.Query != q || len(d.Entered) != 1 || d.Entered[0].Doc != id || len(d.Exited) != 0 {
		t.Fatalf("delta = %+v", d)
	}
	if d.Entered[0].Text == "" {
		t.Fatal("entered match missing retained text")
	}
}

func TestWatchDeliversExits(t *testing.T) {
	e := newEngine(t, WithCountWindow(2))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := e.IngestText("solar turbine output rose", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	// Two unrelated docs push the match out of the 2-doc window.
	if _, err := e.IngestText("markets were calm", at(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a quiet day in parliament", at(10)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v, want exactly 1 (the exit)", got)
	}
	if len(got[0].Exited) != 1 || got[0].Exited[0] != id || len(got[0].Entered) != 0 {
		t.Fatalf("delta = %+v", got[0])
	}
}

func TestWatchOnAdvanceExpiry(t *testing.T) {
	e := newEngine(t, WithTimeWindow(50*time.Millisecond))
	q, err := e.Register("breaking story", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("a breaking story develops", at(0)); err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	if err := e.Advance(at(100)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Exited) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
}

func TestWatchCallbackMayReenterEngine(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := e.Watch(q, func(d Delta) {
		fired = true
		// Re-entrancy: reading results inside the callback must not
		// deadlock.
		_ = e.Results(q)
		_ = e.Stats()
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine blades", at(0)); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("watch never fired")
	}
}

func TestUnwatch(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	if err := e.Watch(q, func(Delta) { calls++ }); err != nil {
		t.Fatal(err)
	}
	if !e.Unwatch(q) {
		t.Fatal("Unwatch failed")
	}
	if e.Unwatch(q) {
		t.Fatal("double Unwatch succeeded")
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatal("unwatched callback fired")
	}
}

func TestWatchReplacesPrevious(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	var a, b int
	if err := e.Watch(q, func(Delta) { a++ }); err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { b++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if a != 0 || b != 1 {
		t.Fatalf("a=%d b=%d, want 0/1", a, b)
	}
}

func TestWatchDroppedWithUnregister(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Watch(q, func(Delta) { t.Fatal("fired after unregister") }); err != nil {
		t.Fatal(err)
	}
	e.Unregister(q)
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
}

// TestWatchDeliveryOrder checks the documented guarantee that one
// epoch's deltas are delivered in ascending query id, regardless of
// registration or watch order.
func TestWatchDeliveryOrder(t *testing.T) {
	e := newEngine(t, WithCountWindow(8), WithBatchSize(4))
	var qids []QueryID
	for _, text := range []string{"solar turbine", "turbine blades", "solar panels", "turbine output", "solar farming"} {
		q, err := e.Register(text, 2)
		if err != nil {
			t.Fatal(err)
		}
		qids = append(qids, q)
	}
	var order []QueryID
	// Watch in reverse registration order: delivery must still be by id.
	for i := len(qids) - 1; i >= 0; i-- {
		if err := e.Watch(qids[i], func(d Delta) { order = append(order, d.Query) }); err != nil {
			t.Fatal(err)
		}
	}
	// One epoch that matches every query.
	for i := 0; i < 4; i++ {
		if _, err := e.IngestText("solar turbine blades panels output farming", at(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(order) != len(qids) {
		t.Fatalf("delivered %d deltas, want %d", len(order), len(qids))
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Fatalf("delivery order %v not ascending by query id", order)
		}
	}
}

// TestWatchPanicDoesNotWedgeDelivery checks that a panicking callback
// (recovered by the caller, as net/http handlers do) does not leave the
// delivery drainer marked busy forever — later deltas must still fire.
func TestWatchPanicDoesNotWedgeDelivery(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q, err := e.Register("solar turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	panicked := false
	var delivered int
	if err := e.Watch(q, func(Delta) {
		delivered++
		if !panicked {
			panicked = true
			panic("watcher bug")
		}
	}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() { _ = recover() }()
		_, _ = e.IngestText("solar turbine output", at(0))
	}()
	if !panicked {
		t.Fatal("first delta never fired")
	}
	// A pure-match document displaces the top-1, forcing a second delta.
	if _, err := e.IngestText("solar turbine", at(10)); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d deltas, want 2 (delivery wedged after panic)", delivered)
	}
}

func TestWatchDisplacementProducesEnterAndExit(t *testing.T) {
	e := newEngine(t, WithCountWindow(10))
	q, err := e.Register("turbine", 1) // top-1: displacement swaps the slot
	if err != nil {
		t.Fatal(err)
	}
	weak, err := e.IngestText("one turbine among many other words entirely unrelated", at(0))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	strong, err := e.IngestText("turbine turbine turbine", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("deltas = %+v", got)
	}
	d := got[0]
	if len(d.Entered) != 1 || d.Entered[0].Doc != strong {
		t.Fatalf("entered = %+v, want doc %d", d.Entered, strong)
	}
	if len(d.Exited) != 1 || d.Exited[0] != weak {
		t.Fatalf("exited = %+v, want doc %d", d.Exited, weak)
	}
}

// TestWatchPanicKeepsBatchTail pins the delivery-loss fix: when one
// epoch produces deltas for several watchers and an early watcher
// panics, the deltas after it must survive. collectDeltas has already
// advanced those watchers' cursors, so if the batch tail were dropped
// with the panic the later watchers would simply never learn about the
// epoch — the next delta would silently diff from a boundary they never
// saw.
func TestWatchPanicKeepsBatchTail(t *testing.T) {
	e := newEngine(t, WithCountWindow(5))
	q1, err := e.Register("solar", 1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Register("turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Deltas deliver in ascending query id: q1's panicking watcher runs
	// before q2's in the same batch.
	if err := e.Watch(q1, func(Delta) { panic("watcher bug") }); err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q2, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	func() {
		// The panic unwinds out of IngestText itself (delivery runs
		// inside the call), so the returned id never lands; the entered
		// document is read back from the boundary result instead.
		defer func() {
			if recover() == nil {
				t.Fatal("watcher panic did not propagate")
			}
		}()
		_, _ = e.IngestText("solar turbine", at(0))
	}()
	res := e.Results(q2)
	if len(res) != 1 {
		t.Fatalf("q2 boundary result = %+v", res)
	}
	id := res[0].Doc
	// The tail is re-enqueued, not delivered inside the panicking drain;
	// the next engine operation drains it, in order, before its own
	// deltas.
	if _, err := e.IngestText("entirely unrelated weather words", at(5)); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("q2 deltas = %+v, want the one delta its sibling's panic tried to eat", got)
	}
	if got[0].Query != q2 || len(got[0].Entered) != 1 || got[0].Entered[0].Doc != id {
		t.Fatalf("q2 delta = %+v, want entry of doc %d", got[0], id)
	}
}

// TestWatchBaselineIsPublishedBoundary pins the Watch baseline to the
// published boundary view. For publishing engines the boundary result
// is the frozen slice collectDeltas itself diffs against, so the stored
// baseline must alias it — a baseline read from the live inner state is
// a different allocation, and (on a follower applying a chunk that
// stopped short of its epoch marker) a different, mid-epoch value.
func TestWatchBaselineIsPublishedBoundary(t *testing.T) {
	e := newEngine(t, WithCountWindow(8), WithBatchSize(4))
	q, err := e.Register("solar turbine", 2)
	if err != nil {
		t.Fatal(err)
	}
	first, err := e.IngestText("solar turbine array", at(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	// A buffered, unflushed document: the engine is mid-epoch.
	second, err := e.IngestText("solar panel field", at(5))
	if err != nil {
		t.Fatal(err)
	}
	var got []Delta
	if err := e.Watch(q, func(d Delta) { got = append(got, d) }); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	ws := e.watches[q]
	bound, ok := e.boundaryResultLocked(q)
	e.mu.Unlock()
	if !ok || len(bound) == 0 {
		t.Fatalf("published boundary result missing: %v %v", bound, ok)
	}
	if len(ws.last) != len(bound) || &ws.last[0] != &bound[0] {
		t.Fatalf("watch baseline is not the published boundary slice: %v vs %v", ws.last, bound)
	}
	if ws.last[0].Doc != first {
		t.Fatalf("baseline = %+v, want the flushed boundary {doc %d}", ws.last, first)
	}
	// Flushing the buffered epoch must deliver exactly the
	// boundary-to-boundary difference.
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Entered) != 1 || got[0].Entered[0].Doc != second || len(got[0].Exited) != 0 {
		t.Fatalf("deltas = %+v, want a single entry of doc %d", got, second)
	}
}

// TestWatchChurnRacesFlushes hammers Watch/Unwatch from several
// goroutines while ingests flush batched epochs and deliver deltas.
// Run under -race; the assertions are the race detector's plus the
// engine surviving with a consistent final state.
func TestWatchChurnRacesFlushes(t *testing.T) {
	e := newEngine(t, WithCountWindow(32), WithBatchSize(8))
	var ids []QueryID
	for _, text := range []string{"solar turbine", "oil tanker", "grid storage", "crude futures"} {
		id, err := e.Register(text, 2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids[w%len(ids)]
			var n atomic.Int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := e.Watch(id, func(Delta) { n.Add(1) }); err != nil {
					t.Errorf("watch %d: %v", id, err)
					return
				}
				e.Unwatch(id)
			}
		}(w)
	}
	texts := []string{"solar turbine output", "oil tanker docked", "grid storage demand", "crude futures price"}
	for i := 0; i < 400; i++ {
		if _, err := e.IngestText(texts[i%len(texts)], at(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if res := e.Results(id); len(res) == 0 {
			t.Fatalf("query %d lost its results under churn", id)
		}
	}
}

// quiesceDelivery waits until the delivery queue is drained and no
// drainer is active. After it returns, every delta enqueued so far has
// either been delivered or suppressed; nothing is in flight.
func quiesceDelivery(e *Engine) {
	for {
		e.dmu.Lock()
		idle := !e.delivering && len(e.deliveryQ) == 0
		e.dmu.Unlock()
		if idle {
			return
		}
		runtime.Gosched()
	}
}

// TestUnwatchSuppressesQueuedDelta pins the delivery-after-Unwatch fix
// deterministically. One epoch produces deltas for q1 and q2; they are
// queued together and delivered in ascending id, so q1's callback runs
// while q2's delta is still sitting in the batch. Unwatching q2 from
// inside q1's callback must suppress that queued delta: with the old
// capture-the-callback queue it fired anyway, after Unwatch returned.
func TestUnwatchSuppressesQueuedDelta(t *testing.T) {
	e := newEngine(t, WithCountWindow(8))
	q1, err := e.Register("solar", 1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Register("turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	unwatched := false
	if err := e.Watch(q1, func(Delta) {
		if !e.Unwatch(q2) {
			t.Error("Unwatch(q2) found no watcher")
		}
		unwatched = true
	}); err != nil {
		t.Fatal(err)
	}
	q2fired := 0
	if err := e.Watch(q2, func(Delta) { q2fired++ }); err != nil {
		t.Fatal(err)
	}
	// One epoch matching both queries: the batch is [q1 delta, q2 delta].
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if !unwatched {
		t.Fatal("q1 watcher never fired")
	}
	if q2fired != 0 {
		t.Fatalf("q2 callback fired %d times after Unwatch returned", q2fired)
	}
}

// TestWatchReplaceSuppressesQueuedDelta is the re-Watch flavour: a
// replacing Watch detaches the previous watcher, so a delta queued for
// the old callback must not invoke it once Watch has returned. The new
// watcher's baseline is the already-published boundary, so it receives
// nothing for the epoch that was in flight either — only for later
// changes.
func TestWatchReplaceSuppressesQueuedDelta(t *testing.T) {
	e := newEngine(t, WithCountWindow(8))
	q1, err := e.Register("solar", 1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.Register("turbine", 1)
	if err != nil {
		t.Fatal(err)
	}
	var newDeltas []Delta
	if err := e.Watch(q1, func(Delta) {
		if err := e.Watch(q2, func(d Delta) { newDeltas = append(newDeltas, d) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	oldFired := 0
	if err := e.Watch(q2, func(Delta) { oldFired++ }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.IngestText("solar turbine", at(0)); err != nil {
		t.Fatal(err)
	}
	if oldFired != 0 {
		t.Fatalf("replaced q2 callback fired %d times after re-Watch returned", oldFired)
	}
	if len(newDeltas) != 0 {
		t.Fatalf("replacement watcher got the in-flight epoch's delta: %+v", newDeltas)
	}
	// The replacement watcher is live for subsequent epochs.
	displacer, err := e.IngestText("turbine turbine turbine", at(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(newDeltas) != 1 || len(newDeltas[0].Entered) != 1 || newDeltas[0].Entered[0].Doc != displacer {
		t.Fatalf("replacement watcher deltas = %+v, want entry of doc %d", newDeltas, displacer)
	}
}

// TestWatchQuiescedUnwatchNeverFiresLate churns Watch/Unwatch against a
// concurrent ingester under -race, asserting the strongest sound form of
// the Unwatch guarantee: once Unwatch has returned AND in-flight
// delivery has quiesced, the detached callback can never fire again.
func TestWatchQuiescedUnwatchNeverFiresLate(t *testing.T) {
	e := newEngine(t, WithCountWindow(16), WithBatchSize(4))
	q, err := e.Register("solar turbine", 4)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		texts := []string{
			"solar turbine output rose", "a quiet day", "turbine blades spin",
			"solar panel field", "markets were calm", "solar turbine array",
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.IngestText(texts[i%len(texts)], at(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	iters := 300
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		var detached atomic.Bool
		if err := e.Watch(q, func(Delta) {
			if detached.Load() {
				t.Error("delta delivered after Unwatch returned and delivery quiesced")
			}
		}); err != nil {
			t.Fatal(err)
		}
		runtime.Gosched()
		e.Unwatch(q)
		quiesceDelivery(e)
		detached.Store(true)
	}
	close(stop)
	wg.Wait()
}

// TestWatchDiffReusesScratch asserts the steady state of a watched query
// — an epoch boundary where the result did not change — performs zero
// allocations in the diff, by reusing the watcher's scratch sets instead
// of building two fresh maps per query per epoch.
func TestWatchDiffReusesScratch(t *testing.T) {
	prev := []model.ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}, {Doc: 3, Score: 0.1}}
	cur := []model.ScoredDoc{{Doc: 1, Score: 0.9}, {Doc: 2, Score: 0.5}, {Doc: 3, Score: 0.1}}
	ws := &watchState{last: prev}
	allocs := testing.AllocsPerRun(200, func() {
		d := ws.diff(7, cur, nil)
		if len(d.Entered) != 0 || len(d.Exited) != 0 {
			t.Fatalf("unexpected delta: %+v", d)
		}
	})
	if allocs != 0 {
		t.Fatalf("diff of an unchanged result allocates %.1f times per epoch, want 0", allocs)
	}
}
