package ita

import (
	"errors"
	"fmt"
	"os"
	"time"

	"ita/internal/vsm"
	"ita/internal/wal"
	"ita/internal/window"
)

// This file wires the write-ahead log (internal/wal) through the
// facade. The protocol is log-before-apply: every mutating operation
// appends its record before touching engine state, completed epoch
// boundaries append a marker (the fsync point under
// DurabilityEpochSync), and every N boundaries the engine checkpoints —
// writes a full snapshot next to the log, rotates to a fresh segment
// and deletes the old one.
//
// Recovery (Open) loads the newest checkpoint, replays the segment's
// record tail through the very same locked operation paths used live
// (so epoch partitioning, auto-flush points and id assignment reproduce
// exactly), tolerates a torn final record by truncating to the last
// clean frame, and garbage-collects leftovers of an interrupted
// checkpoint. Combined with the exact-state snapshot (snapshot.go,
// version 2), the recovered engine is byte-identical to the uncrashed
// one at the recovered boundary: ResultsAll, Stats, Queries and every
// future maintenance decision match.

// walState is the durable engine's log attachment.
type walState struct {
	dir  string
	log  *wal.Log
	mode wal.Durability
	// every is the auto-checkpoint cadence in epoch boundaries; 0
	// disables.
	every int
	// epochSeq counts completed publication boundaries over the
	// engine's whole life (checkpoints persist it). markerSeq tracks,
	// during replay only, the last marker record consumed — markers are
	// integrity checks, not state.
	epochSeq  uint64
	markerSeq uint64
	// ckptSeq is the boundary of the newest on-disk checkpoint; the
	// current segment is wal-<ckptSeq>.log.
	ckptSeq uint64
	// recovering suppresses appends (and checkpoints) while the log
	// replays into the engine.
	recovering bool
	// ckptDue defers an auto-checkpoint signalled mid-operation to the
	// end of the public call, where the log is at a record boundary.
	// After a failed attempt, ckptRetryAt pushes the next one a full
	// interval out so a persistently failing disk is not hammered at
	// every boundary.
	ckptDue     bool
	ckptRetryAt uint64
	// retain caps how many completed segments survive a checkpoint for
	// lagging followers (see WithReplicationRetention); tune carries the
	// replication timing overrides. Both only matter once replication is
	// started.
	retain int
	tune   *replTuning
	hooks  walTestHooks
}

// walTestHooks lets the crash-point tests substitute failing files and
// observe checkpoint phases. Zero value = production behavior.
type walTestHooks struct {
	// create opens a file for writing from scratch (segments and
	// checkpoint temporaries).
	create func(path string) (wal.File, error)
	// checkpointPhase is called between the crash-atomic steps of a
	// checkpoint; the fault tests snapshot the directory at each phase
	// to validate recovery from every intermediate state.
	checkpointPhase func(phase string)
}

func (h *walTestHooks) createFile(path string) (wal.File, error) {
	if h.create != nil {
		return h.create(path)
	}
	return os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_RDWR|os.O_APPEND, 0o644)
}

func (h *walTestHooks) phase(p string) {
	if h.checkpointPhase != nil {
		h.checkpointPhase(p)
	}
}

// walFlushRecord is the constant payload of explicit-flush boundaries.
var walFlushRecord = wal.Record{Kind: wal.KindFlush}

// Open creates or recovers a durable engine in dir.
//
// On a fresh directory it behaves like New(opts...) plus WithWAL(dir):
// a window option is required, the full configuration is written into a
// genesis checkpoint, and logging begins.
//
// On a directory that already holds durable state, the engine is
// recovered: the newest complete checkpoint is restored and the log
// tail replayed, so the engine resumes byte-identically at the last
// recorded operation. Recovery tolerates everything a crash can leave
// behind — a torn final record (truncated), an interrupted checkpoint
// (the previous one is used, leftovers are deleted) — and fails with a
// clean error on anything else. Configuration options passed on
// recovery are checked against the stored configuration and a conflict
// is an error; WithDurability and WithCheckpointEvery are runtime
// policies and may differ freely between runs.
func Open(dir string, opts ...Option) (*Engine, error) {
	return openDurable(dir, opts)
}

func openDurable(dir string, opts []Option) (*Engine, error) {
	// Probe the caller's options once, both for the WAL knobs and for
	// the compatibility check against a recovered configuration.
	probe := config{stemming: true, stopwords: true, seed: 1}
	for _, o := range opts {
		if err := o(&probe); err != nil {
			return nil, err
		}
	}
	if probe.walDir != "" && probe.walDir != dir {
		return nil, fmt.Errorf("ita: Open(%q) conflicts with WithWAL(%q)", dir, probe.walDir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ita: open wal dir: %w", err)
	}
	st, err := wal.ScanDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ita: scan wal dir: %w", err)
	}

	mode := probe.walDurability.wal()
	every := 256
	if probe.walEverySet {
		every = probe.walEvery
	}
	var hooks walTestHooks
	if probe.walHooks != nil {
		hooks = *probe.walHooks
	}

	// Startup cleanup: a crash can orphan checkpoint temporaries and —
	// when it hit before the first record or corrupted everything — leave
	// segments that carry no recoverable state. Both are deleted here so
	// an interrupted first checkpoint (or a torn genesis) does not wedge
	// the directory forever. A segment with even one valid record is
	// never touched by this pass: below, it still makes a checkpoint-less
	// directory refuse to open rather than silently drop operations.
	for _, p := range st.Tmp {
		os.Remove(p)
	}
	st.Tmp = nil
	if _, found := st.Latest(); !found {
		kept := st.Segments[:0]
		for _, seq := range st.Segments {
			if res, err := wal.ScanFile(wal.SegmentPath(dir, seq)); err == nil && len(res.Records) == 0 {
				os.Remove(wal.SegmentPath(dir, seq))
				continue
			}
			kept = append(kept, seq)
		}
		st.Segments = kept
	}

	latest, found := st.Latest()
	if !found {
		if len(st.Segments) > 0 {
			return nil, fmt.Errorf("ita: wal dir %q has segments but no checkpoint; refusing to guess", dir)
		}
		// Fresh directory: build the engine from the options, write the
		// genesis checkpoint, start segment 0.
		e, err := New(append(append([]Option{}, opts...), WithWAL(dir), walAttached())...)
		if err != nil {
			return nil, err
		}
		e.wal = &walState{dir: dir, mode: mode, every: every, retain: probe.replRetain, tune: probe.replTune, hooks: hooks}
		if err := e.writeCheckpointLocked(0); err != nil {
			// Release the shard workers the fresh engine may own; a caller
			// retrying Open must not leak goroutines per attempt.
			if c, ok := e.inner.(interface{ Close() error }); ok {
				c.Close()
			}
			return nil, err
		}
		return e, nil
	}

	// Recovery. Decode the newest checkpoint...
	f, err := os.Open(wal.CheckpointPath(dir, latest))
	if err != nil {
		return nil, fmt.Errorf("ita: open checkpoint: %w", err)
	}
	snap, err := decodeSnapshot(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("ita: checkpoint %d: %w", latest, err)
	}
	if err := checkSnapshotCompat(&probe, snap); err != nil {
		return nil, err
	}
	// Runtime-only knobs (floor margins, probe-twin trees) are not
	// persisted in checkpoints — they exist only in the caller's
	// options. Dropping them here would make the recovered engine
	// maintain its floors on a different schedule than the engine that
	// wrote the log, so thread them through alongside the WAL wiring.
	extra := []Option{WithWAL(dir), walAttached()}
	if probe.scanTrees {
		extra = append(extra, withScanAllTrees())
	}
	if probe.floorTarget != 0 || probe.floorRaise != 0 {
		extra = append(extra, withFloorMargins(probe.floorTarget, probe.floorRaise))
	}
	e, err := restoreSnapshot(snap, extra)
	if err != nil {
		return nil, err
	}
	// From here on the engine may own shard worker goroutines; release
	// them on every failure path so a retried Open cannot leak.
	abort := func(err error) (*Engine, error) {
		if c, ok := e.inner.(interface{ Close() error }); ok {
			c.Close()
		}
		return nil, err
	}
	w := &walState{
		dir: dir, mode: mode, every: every, retain: probe.replRetain, tune: probe.replTune, hooks: hooks,
		epochSeq: snap.EpochSeq, markerSeq: snap.EpochSeq, ckptSeq: latest,
	}
	e.wal = w

	// ...replay the segment tail through the live operation paths...
	segPath := wal.SegmentPath(dir, latest)
	data, err := os.ReadFile(segPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return abort(fmt.Errorf("ita: read segment: %w", err))
	}
	res := wal.Scan(data)
	w.recovering = true
	for i := range res.Records {
		if err := e.replayRecord(&res.Records[i]); err != nil {
			return abort(fmt.Errorf("ita: replay record %d: %w", i, err))
		}
	}
	w.recovering = false

	// ...and truncate the torn tail (if any) before appending resumes.
	sf, err := os.OpenFile(segPath, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return abort(fmt.Errorf("ita: open segment: %w", err))
	}
	if res.Torn {
		if err := sf.Truncate(res.Clean); err != nil {
			sf.Close()
			return abort(fmt.Errorf("ita: truncate torn tail: %w", err))
		}
	}
	w.log = wal.NewLog(sf, res.Clean, mode)
	// With replication retention configured, a restarting primary keeps
	// its follower-resume window across the restart (no follower has
	// registered yet, so every segment in the window is kept as grace);
	// otherwise older segments are collected exactly as before.
	wal.Retain(dir, st, latest, e.walKeepSegLocked(st, latest))
	return e, nil
}

// replayRecord applies one logged operation through the same locked
// paths live calls use, verifying the determinism invariants as it
// goes: replayed id assignment must reproduce the logged ids, and
// marker records must arrive in sequence and never ahead of the
// boundaries the replayed operations produced.
//
// Each operation's watch deltas are queued rather than discarded:
// during crash recovery no watcher exists yet so the queue stays empty,
// but a replication follower replays records while serving live Watch
// subscriptions, and its watchers must observe the same epoch-boundary
// delta stream the primary's do.
func (e *Engine) replayRecord(rec *wal.Record) error {
	w := e.wal
	switch rec.Kind {
	case wal.KindDoc:
		id, deltas, err := e.ingestLocked(rec.Text, time.Unix(0, rec.At))
		if err != nil {
			return err
		}
		e.queueDeltasLocked(deltas)
		if uint64(id) != rec.Doc {
			return fmt.Errorf("replayed doc id %d, logged %d", id, rec.Doc)
		}
	case wal.KindBatch:
		items := make([]TimedText, len(rec.Items))
		for i, it := range rec.Items {
			items[i] = TimedText{Text: it.Text, At: time.Unix(0, it.At)}
		}
		ids, deltas, err := e.ingestBatchLocked(items)
		if err != nil {
			return err
		}
		e.queueDeltasLocked(deltas)
		if len(ids) > 0 && uint64(ids[0]) != rec.Doc {
			return fmt.Errorf("replayed batch start id %d, logged %d", ids[0], rec.Doc)
		}
	case wal.KindRegister:
		// The record's id is applied verbatim: cluster nodes register
		// sparse slices of the global id space, so the replayed id may
		// skip ahead of a dense sequence. registerAtLocked still rejects
		// an id behind nextQuery, which is what a corrupt or reordered
		// log looks like.
		id, deltas, err := e.registerAtLocked(QueryID(rec.Query), rec.Text, rec.K)
		if err != nil {
			return err
		}
		e.queueDeltasLocked(deltas)
		if uint64(id) != rec.Query {
			return fmt.Errorf("replayed query id %d, logged %d", id, rec.Query)
		}
	case wal.KindAlign:
		deltas, err := e.alignRegisterLocked(QueryID(rec.Query), rec.Text)
		if err != nil {
			return err
		}
		e.queueDeltasLocked(deltas)
	case wal.KindUnregister:
		e.unregisterLocked(QueryID(rec.Query))
	case wal.KindAdvance:
		deltas, err := e.advanceLocked(time.Unix(0, rec.At))
		if err != nil {
			return err
		}
		e.queueDeltasLocked(deltas)
	case wal.KindFlush:
		if err := e.flushLocked(); err != nil {
			return err
		}
		// Parity with the public Flush: the boundary publishes (there are
		// no watchers during recovery, so the deltas are empty and
		// discarded). Without this the recovered wait-free read surface
		// would lag one boundary behind the crashed engine's.
		e.queueDeltasLocked(e.collectDeltas())
	case wal.KindEpoch:
		w.markerSeq++
		if rec.Seq != w.markerSeq || rec.Seq > w.epochSeq {
			return fmt.Errorf("epoch marker %d out of sequence (expected %d, %d boundaries replayed)",
				rec.Seq, w.markerSeq, w.epochSeq)
		}
	default:
		return fmt.Errorf("unknown record kind %d", rec.Kind)
	}
	return nil
}

// walAppendLocked logs one operation record. A nil walState (an
// in-memory engine) and replay mode are no-ops. Must be called with
// e.mu held, before the operation mutates any state.
//
// A failed append is recoverable, not terminal: log-before-apply means
// the operation was not applied, the log still ends at a clean record
// boundary (Append truncates a partial frame back, and poisons itself
// only when even that fails), and the caller receives the error — a
// later operation may succeed once the fault (say, a full disk)
// clears. The terminal cases — a marker-sequence gap, a failed fsync, a
// failed segment rotation — poison the log at their own sites.
func (e *Engine) walAppendLocked(rec *wal.Record) error {
	w := e.wal
	if w == nil || w.recovering {
		return nil
	}
	if err := w.log.Append(rec); err != nil {
		return err
	}
	// Replication ships records as soon as they are written, not only at
	// fsync points: the follower's acked-boundary guarantee comes from
	// its own acks, and shipping early keeps its lag at the network
	// round-trip instead of the checkpoint cadence.
	e.replPublishLocked()
	return nil
}

// walBoundaryLocked accounts one completed publication boundary:
// increments the epoch sequence, appends the marker record, fsyncs
// under DurabilityEpochSync and arms the auto-checkpoint when the
// cadence is reached. During replay only the counter moves — the
// markers already on disk are consumed as integrity checks. Must be
// called with e.mu held, after the boundary's state is fully applied.
func (e *Engine) walBoundaryLocked() error {
	w := e.wal
	if w == nil {
		return nil
	}
	w.epochSeq++
	if w.recovering {
		return nil
	}
	// A marker that fails to append (or to sync) poisons the log: the
	// boundary's state is already applied and the sequence counter
	// already moved, so continuing to log would leave a marker-sequence
	// gap that recovery rejects — better to fail stop here, with every
	// record on disk still a clean replayable prefix. (Post-fsync-failure
	// page-cache state is undefined on some kernels, which is the other
	// reason a failed sync is terminal.)
	if err := w.log.Append(&wal.Record{Kind: wal.KindEpoch, Seq: w.epochSeq}); err != nil {
		w.log.Poison(err)
		return err
	}
	if w.mode == wal.DurabilityEpochSync {
		if err := w.log.Sync(); err != nil {
			w.log.Poison(err)
			return err
		}
	}
	e.replPublishLocked()
	if w.every > 0 && w.epochSeq-w.ckptSeq >= uint64(w.every) && w.epochSeq >= w.ckptRetryAt {
		w.ckptDue = true
	}
	return nil
}

// walEpochSeq returns the durable boundary count (0 for in-memory
// engines); snapshots persist it.
func (e *Engine) walEpochSeq() uint64 {
	if e.wal == nil {
		return 0
	}
	return e.wal.epochSeq
}

// maybeCheckpointLocked runs a due auto-checkpoint. It is called at the
// end of every public mutating operation — never mid-operation, where
// rotating the segment could strand the operation's earlier records in
// a deleted file — and only with an empty epoch buffer, so the
// checkpoint's snapshot covers every record it retires.
//
// Failures are not surfaced through the triggering operation: that
// operation already succeeded and is durable in the log, and returning
// an error for it would invite callers to retry — duplicating an
// ingest that actually happened. A failed attempt is retried one full
// interval later (log replay simply stays longer until one succeeds);
// the truly unsafe failure — a committed checkpoint whose segment
// cannot be rotated — poisons the log inside writeCheckpointLocked and
// fails every later operation loudly. Checkpoint() reports errors
// directly for callers that need them.
func (e *Engine) maybeCheckpointLocked() {
	w := e.wal
	if w == nil || !w.ckptDue || w.recovering || len(e.pending) != 0 {
		return
	}
	w.ckptDue = false
	if err := e.checkpointLocked(); err != nil {
		w.ckptRetryAt = w.epochSeq + uint64(w.every)
	}
}

// Checkpoint forces a checkpoint now: any buffered epoch is flushed
// (and logged), the engine state is snapshotted next to the log, the
// log rotates to a fresh segment and obsolete files are deleted. Use it
// before a planned shutdown to make the next Open instantaneous. It is
// an error on an engine without a WAL.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	if err := e.gateWriteLocked(); err != nil {
		e.mu.Unlock()
		return err
	}
	if e.wal == nil {
		e.mu.Unlock()
		return errors.New("ita: Checkpoint requires a durable engine (ita.Open or WithWAL)")
	}
	err := e.flushExplicitLocked()
	if err == nil {
		err = e.checkpointLocked()
	}
	e.queueDeltasLocked(e.collectDeltas())
	e.mu.Unlock()
	e.deliverQueued()
	return err
}

// checkpointLocked snapshots the current boundary and rotates the log.
// Must be called with e.mu held and no buffered epoch. A checkpoint at
// the boundary of the previous one is a no-op.
func (e *Engine) checkpointLocked() error {
	w := e.wal
	if w.epochSeq == w.ckptSeq {
		return nil
	}
	return e.writeCheckpointLocked(w.epochSeq)
}

// writeCheckpointLocked writes the checkpoint for boundary seq and
// swaps the log to the fresh segment wal-<seq>.log. Each step is
// crash-atomic:
//
//	(1) the snapshot is written to checkpoint-<seq>.tmp and fsynced —
//	    a crash leaves a tmp file recovery deletes;
//	(2) the tmp file is renamed to checkpoint-<seq>.ckpt — the atomic
//	    commit point: recovery now prefers this checkpoint, and every
//	    record of the old segment is covered by it;
//	(3) the fresh segment is created and the old files deleted — a
//	    crash before or during this leaves stale files recovery
//	    ignores and garbage-collects.
func (e *Engine) writeCheckpointLocked(seq uint64) error {
	w := e.wal
	w.hooks.phase("begin")
	tmp := wal.CheckpointTmpPath(w.dir, seq)
	f, err := w.hooks.createFile(tmp)
	if err != nil {
		return fmt.Errorf("ita: checkpoint: %w", err)
	}
	if err := e.encodeSnapshotLocked(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ita: checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ita: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ita: checkpoint close: %w", err)
	}
	w.hooks.phase("written")
	if err := os.Rename(tmp, wal.CheckpointPath(w.dir, seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ita: checkpoint rename: %w", err)
	}
	wal.SyncDir(w.dir)
	w.hooks.phase("renamed")
	sf, err := w.hooks.createFile(wal.SegmentPath(w.dir, seq))
	if err != nil {
		// The checkpoint committed but the new segment could not be
		// created: recovery handles exactly this state (no segment for
		// the newest checkpoint), but the running engine must not keep
		// logging — appends would land in the old segment, which the next
		// recovery ignores and deletes, silently dropping acknowledged
		// operations. Poison the log so every later mutation fails loudly
		// instead.
		err = fmt.Errorf("ita: rotate segment: %w", err)
		if w.log != nil {
			w.log.Poison(err)
		}
		return err
	}
	wal.SyncDir(w.dir)
	if w.log != nil {
		w.log.Close()
	}
	w.log = wal.NewLog(sf, 0, w.mode)
	w.hooks.phase("rotated")
	if st, err := wal.ScanDir(w.dir); err == nil {
		wal.Retain(w.dir, st, seq, e.walKeepSegLocked(st, seq))
	}
	w.ckptSeq = seq
	e.replPublishLocked()
	w.hooks.phase("done")
	return nil
}

// checkSnapshotCompat reports a configuration conflict between options
// a caller passed to Open and the configuration recovered from a
// checkpoint. Only deviations the caller expressed are detectable:
// options that coincide with the defaults (stemming on, stopwords on,
// seed 1, no retention) pass silently and the recovered value wins.
func checkSnapshotCompat(user *config, s *snapshot) error {
	mismatch := func(what string, got, want any) error {
		return fmt.Errorf("ita: option conflicts with recovered state: %s %v, recovered %v (remove the option or use a fresh directory)", what, got, want)
	}
	stored := fmt.Sprintf("count %d", s.CountN)
	if s.CountN == 0 {
		stored = fmt.Sprintf("span %s", time.Duration(s.SpanNanos))
	}
	switch pol := user.policy.(type) {
	case nil:
	case window.Count:
		if s.CountN != pol.N {
			return mismatch("window", fmt.Sprintf("count %d", pol.N), stored)
		}
	case window.Span:
		if time.Duration(s.SpanNanos) != pol.D || s.CountN != 0 {
			return mismatch("window", fmt.Sprintf("span %s", pol.D), stored)
		}
	}
	if user.shardsSet {
		if s.Algorithm != ShardedIncrementalThreshold || s.Shards != user.shards {
			return mismatch("shards", user.shards, fmt.Sprintf("%s/%d", s.Algorithm, s.Shards))
		}
	} else if user.algorithmSet && user.algorithm != s.Algorithm {
		return mismatch("algorithm", user.algorithm, s.Algorithm)
	}
	normBatch := func(b int) int {
		if b <= 1 {
			return 1
		}
		return b
	}
	if user.batchSize > 0 && normBatch(user.batchSize) != normBatch(s.BatchSize) {
		return mismatch("batch size", user.batchSize, s.BatchSize)
	}
	if !user.stemming && s.Stemming {
		return mismatch("stemming", false, true)
	}
	if !user.stopwords && s.Stopwords {
		return mismatch("stopwords", false, true)
	}
	if user.retainText && !s.RetainText {
		return mismatch("text retention", true, false)
	}
	if o, ok := user.weighter.(vsm.Okapi); ok && (!s.Okapi || s.OkapiAvgDL != o.AvgDocLen) {
		return mismatch("okapi scoring", o.AvgDocLen, s.OkapiAvgDL)
	}
	if user.seed != 1 && user.seed != s.Seed {
		return mismatch("seed", user.seed, s.Seed)
	}
	return nil
}
