package ita

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"testing"
	"time"

	"ita/internal/faults"
)

// This file extends the metamorphic op-sequence generator
// (metamorphic_test.go) to replication under injected faults: the same
// byte-driven workload runs against a never-faulted in-memory
// reference and a durable primary whose WAL streams to a standby
// through a faults.Network that drops, delays, truncates mid-frame and
// partitions connections on a seeded deterministic schedule. At every
// opResults boundary the primary quiesces, the standby catches up
// through whatever reconnects and resyncs the faults forced, and all
// three engines must be byte-identical in the full captureState sense
// — with the standby's WAL additionally a byte-identical mirror of the
// primary's. opCrash alternates kill/rejoin of the standby (clean-ish
// close + reopen from its directory) and of the primary (server torn
// down, engine abandoned unflushed, reopened and re-listened on the
// same port). Every run ends with a promote-under-partition: the
// standby is promoted while the primary is unreachable, must equal the
// reference exactly, and must keep lockstep with it as a writable
// primary afterwards.

// faultReplTuning returns the follower tuning of a fault run: dials go
// through the fault domain, and backoffs are tight enough that injected
// drops cost milliseconds, not seconds.
func faultReplTuning(id string, netw *faults.Network) Option {
	return withReplTuning(replTuning{
		id:           id,
		dial:         netw.Dial,
		minBackoff:   time.Millisecond,
		maxBackoff:   10 * time.Millisecond,
		dialTimeout:  time.Second,
		readTimeout:  2 * time.Second,
		writeTimeout: 2 * time.Second,
		heartbeat:    5 * time.Millisecond,
		ackTimeout:   10 * time.Second,
	})
}

// openFaultFollower opens the standby through the fault domain,
// retrying while injected faults break the bootstrap snapshot fetch.
func openFaultFollower(t *testing.T, dir, addr string, netw *faults.Network) *Engine {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		f, err := OpenFollower(dir, addr, WithDurability(DurabilityOff),
			faultReplTuning("standby", netw))
		if err == nil {
			return f
		}
		if time.Now().After(deadline) {
			t.Fatalf("open follower through faults: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// listenFaultPrimary binds addr (a fixed port after a primary restart,
// port 0 on first start) and serves replication through the fault
// domain, retrying while the old listener's port is released.
func listenFaultPrimary(t *testing.T, p *Engine, addr string, netw *faults.Network) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			if err := p.startReplicationOn(netw.Listener(l)); err != nil {
				t.Fatalf("start replication: %v", err)
			}
			return l.Addr().String()
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runReplicatedSequence is the replication analogue of runOpSequence:
// one decoded op sequence, one fault schedule, full equivalence at
// every boundary.
func runReplicatedSequence(t *testing.T, data []byte, seed int64, cfg faults.Config) {
	t.Helper()
	ops := decodeOps(data)
	if len(ops) == 0 {
		return
	}
	var pol Option
	if len(data) > 0 && data[0]%2 == 1 {
		pol = WithTimeWindow(120 * time.Millisecond)
	} else {
		pol = WithCountWindow(10)
	}

	// The reference runs the slice posting layout while the primary and
	// standby keep the default blocked layout, making every replication
	// cell a differential twin for the compressed postings too.
	ref, err := New(pol, WithPostingLayout(LayoutSlices))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	netw := faults.NewNetwork(faults.NewSchedule(seed, cfg))
	pOpts := []Option{pol, WithDurability(DurabilityOff), WithCheckpointEvery(16),
		WithReplicationRetention(4), testReplTuning("primary")}
	pDir := t.TempDir()
	p, err := Open(pDir, pOpts...)
	if err != nil {
		t.Fatal(err)
	}
	addr := listenFaultPrimary(t, p, "127.0.0.1:0", netw)
	fDir := t.TempDir()
	f := openFaultFollower(t, fDir, addr, netw)
	defer func() {
		f.Close()
		p.Close()
	}()

	var live []QueryID
	clock := 0
	crashes := 0

	compare := func(step string) {
		for _, e := range []*Engine{p, ref} {
			if err := e.Flush(); err != nil {
				t.Fatalf("%s: flush: %v", step, err)
			}
		}
		waitReplCaughtUp(t, f, p, 30*time.Second)
		requireMirroredSegment(t, p, f, step)
		want := captureState(ref)
		requireSameState(t, captureState(p), want, step+": primary vs reference")
		requireSameState(t, captureState(f), want, step+": standby vs reference")
	}

	for step, op := range ops {
		ctx := fmt.Sprintf("op %d", step)
		switch op.kind {
		case opIngest:
			clock += op.dtMs
			var want DocID
			for i, e := range []*Engine{p, ref} {
				id, err := e.IngestText(op.text, at(clock))
				if err != nil {
					t.Fatalf("%s: ingest: %v", ctx, err)
				}
				if i == 0 {
					want = id
				} else if id != want {
					t.Fatalf("%s: doc id %d vs %d", ctx, id, want)
				}
			}
		case opIngestBatch:
			items := make([]TimedText, len(op.batch))
			for j, text := range op.batch {
				clock += op.dtMs
				items[j] = TimedText{Text: text, At: at(clock)}
			}
			for _, e := range []*Engine{p, ref} {
				if _, err := e.IngestBatch(items); err != nil {
					t.Fatalf("%s: batch: %v", ctx, err)
				}
			}
		case opRegister:
			var want QueryID
			for i, e := range []*Engine{p, ref} {
				id, err := e.Register(op.text, op.k)
				if err != nil {
					t.Fatalf("%s: register: %v", ctx, err)
				}
				if i == 0 {
					want = id
				} else if id != want {
					t.Fatalf("%s: query id %d vs %d", ctx, id, want)
				}
			}
			live = append(live, want)
		case opUnregister:
			if len(live) == 0 {
				continue
			}
			idx := op.qsel % len(live)
			id := live[idx]
			live = append(live[:idx], live[idx+1:]...)
			for _, e := range []*Engine{p, ref} {
				if !e.Unregister(id) {
					t.Fatalf("%s: unregister %d failed", ctx, id)
				}
			}
		case opAdvance:
			clock += op.dtMs
			for _, e := range []*Engine{p, ref} {
				if err := e.Advance(at(clock)); err != nil {
					t.Fatalf("%s: advance: %v", ctx, err)
				}
			}
		case opFlush:
			for _, e := range []*Engine{p, ref} {
				if err := e.Flush(); err != nil {
					t.Fatalf("%s: flush: %v", ctx, err)
				}
			}
		case opResults:
			compare(ctx)
		case opCrash:
			crashes++
			if crashes%2 == 1 {
				// Kill and rejoin the standby from its own directory.
				if err := f.Close(); err != nil {
					t.Fatalf("%s: close standby: %v", ctx, err)
				}
				f = openFaultFollower(t, fDir, addr, netw)
			} else {
				// Kill -9 the primary: server and listener die, nothing is
				// flushed, and the reopened engine must recover
				// byte-identically before it serves followers again on the
				// same port.
				pre := captureState(p)
				crashPrimaryForTest(p)
				np, err := Open(pDir, pOpts...)
				if err != nil {
					t.Fatalf("%s: reopen primary: %v", ctx, err)
				}
				requireSameState(t, captureState(np), pre, ctx+": primary crash recovery")
				p = np
				addr = listenFaultPrimary(t, p, addr, netw)
			}
		case opCheckpoint:
			if err := p.Checkpoint(); err != nil {
				t.Fatalf("%s: checkpoint: %v", ctx, err)
			}
		}
	}
	compare("end of run")

	// Finale: promote-under-partition. The primary keeps writing behind
	// the cut; the promoted standby must equal the quiesced boundary the
	// reference holds, and must stay in lockstep as a writable primary.
	netw.Heal() // end any schedule-driven partition; the manual cut below is total
	netw.Partition()
	driveOps(t, 1000, 1012, p)
	if err := f.Promote(); err != nil {
		t.Fatalf("promote under partition: %v", err)
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted standby vs reference")
	driveOps(t, 2000, 2024, f, ref)
	for _, e := range []*Engine{f, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted standby after writes")
}

// faultGrid is the fault-config sweep of the metamorphic replication
// suite: a clean run, each fault type alone, and a mixed run.
var faultGrid = []struct {
	name string
	cfg  faults.Config
}{
	{"clean", faults.Config{}},
	{"drops", faults.Config{DropRate: 0.02}},
	{"truncates", faults.Config{TruncateRate: 0.02}},
	{"partitions", faults.Config{PartitionRate: 0.002, PartitionFor: 25 * time.Millisecond}},
	{"mixed", faults.Config{DropRate: 0.01, TruncateRate: 0.01,
		DelayRate: 0.05, MaxDelay: 2 * time.Millisecond,
		PartitionRate: 0.001, PartitionFor: 25 * time.Millisecond}},
}

// TestMetamorphicReplication runs the generator across the fault grid.
// Replay one cell with ITA_REPL_SEED=<seed> (the op seed; the fault
// schedule seed is derived as seed*31+cell index, so the whole cell
// reproduces).
func TestMetamorphicReplication(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	if env := os.Getenv("ITA_REPL_SEED"); env != "" {
		n, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("ITA_REPL_SEED=%q: %v", env, err)
		}
		seeds = []int64{n}
	}
	for _, seed := range seeds {
		for ci, cell := range faultGrid {
			seed, ci, cell := seed, ci, cell
			t.Run(fmt.Sprintf("seed=%d/%s", seed, cell.name), func(t *testing.T) {
				t.Logf("replay with: ITA_REPL_SEED=%d go test -run TestMetamorphicReplication", seed)
				data := make([]byte, 512)
				rand.New(rand.NewSource(seed)).Read(data)
				runReplicatedSequence(t, data, seed*31+int64(ci), cell.cfg)
			})
		}
	}
}

// TestFaultScheduleReplay is the CI smoke of fault-schedule
// determinism: a fixed op seed against a fixed fault schedule covering
// every fault type. The schedule maps the n-th I/O event to its fault
// by (seed, index) alone, so this exact run is what a failure
// elsewhere replays.
func TestFaultScheduleReplay(t *testing.T) {
	data := make([]byte, 512)
	rand.New(rand.NewSource(7)).Read(data)
	runReplicatedSequence(t, data, 424242, faults.Config{
		DropRate: 0.015, TruncateRate: 0.015,
		DelayRate: 0.05, MaxDelay: 2 * time.Millisecond,
		PartitionRate: 0.001, PartitionFor: 25 * time.Millisecond,
	})
}
