// Productwatch: the paper's entrepreneur scenario — tracking
// developments about competing products over the same news stream other
// users monitor for other reasons. This example runs the engine with
// the Okapi BM25 weighting (the paper notes ITA applies unchanged to
// Okapi scores) and compares two engines side by side on one stream:
// cosine versus Okapi rankings for the same standing query.
//
//	go run ./examples/productwatch
package main

import (
	"fmt"
	"log"
	"time"

	"ita"
)

func main() {
	cosineEng, err := ita.New(
		ita.WithCountWindow(200),
		ita.WithTextRetention(),
	)
	if err != nil {
		log.Fatal(err)
	}
	okapiEng, err := ita.New(
		ita.WithCountWindow(200),
		ita.WithTextRetention(),
		// Newswire articles average roughly 40 tokens after stopword
		// removal; BM25's length normalization is calibrated around it.
		ita.WithOkapiScoring(40),
	)
	if err != nil {
		log.Fatal(err)
	}

	const watch = "processor chip handset benchmark"
	qCos, err := cosineEng.Register(watch, 5)
	if err != nil {
		log.Fatal(err)
	}
	qOk, err := okapiEng.Register(watch, 5)
	if err != nil {
		log.Fatal(err)
	}

	// One shared stream, two engines: every article goes to both.
	feed := ita.NewNewsFeed(7)
	clock := time.Now()
	for i := 0; i < 400; i++ {
		clock = clock.Add(50 * time.Millisecond)
		_, text := feed.Mixed()
		if _, err := cosineEng.IngestText(text, clock); err != nil {
			log.Fatal(err)
		}
		if _, err := okapiEng.IngestText(text, clock); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("standing watch: %q over the last %d articles\n\n", watch, cosineEng.WindowLen())
	fmt.Println("cosine ranking:")
	for i, m := range cosineEng.Results(qCos) {
		fmt.Printf("  %d. [%.3f] %s\n", i+1, m.Score, clip(m.Text, 90))
	}
	fmt.Println("\nokapi bm25 ranking:")
	for i, m := range okapiEng.Results(qOk) {
		fmt.Printf("  %d. [%.3f] %s\n", i+1, m.Score, clip(m.Text, 90))
	}

	cs, os := cosineEng.Stats(), okapiEng.Stats()
	fmt.Printf("\nincremental work (cosine engine): %d refills, %d roll-up steps, %d list reads\n",
		cs.Refills, cs.RollupSteps, cs.SearchReads)
	fmt.Printf("incremental work (okapi engine):  %d refills, %d roll-up steps, %d list reads\n",
		os.Refills, os.RollupSteps, os.SearchReads)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
