// Emailthreat: the paper's security-analyst scenario. An analyst
// monitors email traffic with standing threat-profile queries ("emails
// that mention names of explosives or possible biological weapons") and
// wants an alert the moment a new message enters some profile's top-k.
//
// The example demonstrates the Watch API: the engine delivers result
// deltas (documents entering or leaving a top-k) synchronously after
// each arrival — exactly the change the incremental threshold algorithm
// computes cheaply.
//
//	go run ./examples/emailthreat
package main

import (
	"fmt"
	"log"
	"time"

	"ita"
)

// A small simulated mail spool: mostly routine traffic with a few
// messages that should trip the threat profiles.
var emails = []string{
	"Reminder: the quarterly budget review moved to Thursday at 10am.",
	"Lunch options near the office keep getting better, try the noodle place.",
	"Shipment update: the container clears customs on Friday morning.",
	"The chemistry forum discussed synthesis routes for improvised explosives and detonators.",
	"Please approve the travel request for the sales conference in March.",
	"Minutes from the standup: migration on track, demo slides pending.",
	"Intercepted note mentions anthrax spores and other biological weapons material.",
	"Parking garage maintenance is scheduled for the weekend, use street level.",
	"They discussed moving the explosives cache across the border on Tuesday night.",
	"New cafeteria menu starts Monday with vegetarian options every day.",
	"Analysis of the seized drive found bomb making instructions and fuse diagrams.",
	"The book club picks a new title this Friday, suggestions welcome.",
}

func main() {
	eng, err := ita.New(
		ita.WithCountWindow(500), // "the 500 most recent messages"
		ita.WithTextRetention(),
	)
	if err != nil {
		log.Fatal(err)
	}

	profiles := map[string]string{
		"explosives": "explosives detonator bomb fuse",
		"bioweapons": "biological weapons anthrax spores",
	}
	queries := make(map[string]ita.QueryID, len(profiles))
	for name, text := range profiles {
		q, err := eng.Register(text, 3)
		if err != nil {
			log.Fatal(err)
		}
		queries[name] = q
		// The alerting primitive: the engine pushes result deltas, no
		// polling or manual diffing required.
		profile := name
		if err := eng.Watch(q, func(d ita.Delta) {
			for _, m := range d.Entered {
				fmt.Printf("⚠ ALERT [%s] message %d entered the top-3 (score %.3f):\n   %q\n",
					profile, m.Doc, m.Score, m.Text)
			}
		}); err != nil {
			log.Fatal(err)
		}
	}

	clock := time.Now()
	for _, text := range emails {
		clock = clock.Add(250 * time.Millisecond)
		if _, err := eng.IngestText(text, clock); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nfinal standing results:")
	for name, q := range queries {
		fmt.Printf("── profile %q\n", name)
		for rank, m := range eng.Results(q) {
			fmt.Printf("   %d. [%.3f] %s\n", rank+1, m.Score, m.Text)
		}
	}
	s := eng.Stats()
	fmt.Printf("\n%d messages scanned, %d similarity computations — the index touched only candidate messages\n",
		s.Arrivals, s.ScoreComputations)
}
