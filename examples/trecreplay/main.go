// Trecreplay: stream a TREC-format collection — the format of the WSJ
// corpus the paper evaluates on — through the engine, exactly as the
// paper's monitoring server would consume it.
//
// Without arguments the example writes a small embedded TREC file to a
// temporary directory and replays it; point it at a real collection
// with:
//
//	go run ./examples/trecreplay /path/to/wsj.sgml
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ita"
)

// A miniature TREC file in the WSJ layout, used when no path is given.
const embedded = `<DOC>
<DOCNO> WSJ870324-0001 </DOCNO>
<HL> Oil Markets </HL>
<TEXT>
Crude oil futures climbed as producers signaled output cuts.
Refinery utilization stayed near record levels on the gulf coast.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ870324-0002 </DOCNO>
<HL> Banking </HL>
<TEXT>
The central bank held interest rates steady despite inflation worries.
Lenders tightened credit standards for commercial borrowers.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ870324-0003 </DOCNO>
<HL> Technology </HL>
<TEXT>
A semiconductor maker unveiled a faster processor for workstations.
Analysts said chip prices would keep falling through the year.
</TEXT>
</DOC>
<DOC>
<DOCNO> WSJ870324-0004 </DOCNO>
<HL> Energy </HL>
<TEXT>
Natural gas pipelines won approval for a new interstate route.
Crude inventories fell for the fourth consecutive week.
</TEXT>
</DOC>
`

func main() {
	path := ""
	if len(os.Args) > 1 {
		path = os.Args[1]
	} else {
		dir, err := os.MkdirTemp("", "trecreplay")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "wsj-sample.sgml")
		if err := os.WriteFile(path, []byte(embedded), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("no collection given; replaying the embedded WSJ-style sample")
	}

	docs, err := ita.LoadTRECFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d documents from %s\n\n", len(docs), path)

	eng, err := ita.New(
		ita.WithCountWindow(10000),
		ita.WithTextRetention(),
	)
	if err != nil {
		log.Fatal(err)
	}

	queries := map[string]string{
		"oil":   "crude oil futures inventories",
		"rates": "interest rates central bank credit",
		"chips": "semiconductor processor chip prices",
	}
	ids := make(map[string]ita.QueryID, len(queries))
	for name, text := range queries {
		q, err := eng.Register(text, 3)
		if err != nil {
			log.Fatal(err)
		}
		ids[name] = q
	}

	// Replay at the paper's 200 documents/second of stream time (the
	// wall clock is not throttled; arrival timestamps carry the rate).
	clock := time.Now()
	names := make(map[ita.DocID]string, len(docs))
	for _, d := range docs {
		clock = clock.Add(5 * time.Millisecond)
		id, err := eng.IngestText(d.Text, clock)
		if err != nil {
			log.Fatal(err)
		}
		names[id] = d.Name
	}

	for name, q := range ids {
		fmt.Printf("── standing query %q\n", name)
		res := eng.Results(q)
		if len(res) == 0 {
			fmt.Println("   no matches in the window")
		}
		for rank, m := range res {
			fmt.Printf("   %d. [%.3f] %s — %s\n", rank+1, m.Score, names[m.Doc], clip(m.Text, 70))
		}
		fmt.Println()
	}

	s := eng.Stats()
	fmt.Printf("window=%d docs, dictionary=%d terms, %d similarity computations for %d arrivals\n",
		eng.WindowLen(), eng.DictionarySize(), s.ScoreComputations, s.Arrivals)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
