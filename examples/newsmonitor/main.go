// Newsmonitor: the paper's investment-manager scenario. An analyst
// tracks a portfolio of industries by registering standing queries over
// a newsflash stream; the server keeps each query's top-k newsflashes
// from the last 30 seconds of stream time (a time-based sliding window).
//
//	go run ./examples/newsmonitor
package main

import (
	"fmt"
	"log"
	"time"

	"ita"
)

func main() {
	eng, err := ita.New(
		ita.WithTimeWindow(30*time.Second),
		ita.WithTextRetention(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The portfolio: one standing query per industry of interest.
	portfolio := map[string]string{
		"rates":  "interest rates central bank inflation",
		"energy": "crude oil production refinery gas",
		"chips":  "semiconductor processor chip foundry",
	}
	queries := make(map[string]ita.QueryID, len(portfolio))
	for name, text := range portfolio {
		q, err := eng.Register(text, 3)
		if err != nil {
			log.Fatal(err)
		}
		queries[name] = q
	}

	// Simulated newsflash feed: ~10 flashes/second of mixed topics.
	feed := ita.NewNewsFeed(42)
	clock := time.Now()
	const flashes = 300
	for i := 0; i < flashes; i++ {
		clock = clock.Add(100 * time.Millisecond)
		_, text := feed.Mixed()
		if _, err := eng.IngestText(text, clock); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("after %d newsflashes (%d still in the 30s window):\n\n", flashes, eng.WindowLen())
	for name, q := range queries {
		text, _ := eng.QueryText(q)
		fmt.Printf("── portfolio query %q (%s)\n", name, text)
		res := eng.Results(q)
		if len(res) == 0 {
			fmt.Println("   no relevant newsflashes in the window")
		}
		for rank, m := range res {
			fmt.Printf("   %d. [%.3f] %s\n", rank+1, m.Score, clip(m.Text, 96))
		}
		fmt.Println()
	}

	// The stream goes quiet: advancing the clock past the window span
	// expires everything, and the results drain accordingly.
	clock = clock.Add(45 * time.Second)
	if err := eng.Advance(clock); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 45s of silence: window=%d docs, rates query has %d results\n",
		eng.WindowLen(), len(eng.Results(queries["rates"])))
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
