// Quickstart: the smallest end-to-end use of the ita engine.
//
// A count-based window of 5 documents, one standing query, a handful of
// arriving documents, and the continuously maintained top-k printed
// after each arrival — including the moment a match slides out of the
// window.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ita"
)

func main() {
	eng, err := ita.New(
		ita.WithCountWindow(5), // "the 5 most recent documents"
		ita.WithTextRetention(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's running example: a standing query for {white tower},
	// requesting the top 2 documents.
	query, err := eng.Register("white tower", 2)
	if err != nil {
		log.Fatal(err)
	}

	docs := []string{
		"The white tower overlooks the harbor.",
		"Grain prices rose for a third week.",
		"Workers repainted the old tower in brilliant white.",
		"The white-tailed eagle nests in the tower ruins.",
		"A new bakery opened downtown.",
		"City hall approved the subway extension.",
		"Fog covered the bay until noon.",
	}

	now := time.Now()
	for i, text := range docs {
		now = now.Add(5 * time.Millisecond) // ~200 docs/second
		id, err := eng.IngestText(text, now)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("arrival %d (doc %d): %q\n", i+1, id, text)
		for rank, m := range eng.Results(query) {
			fmt.Printf("   top-%d  score=%.3f  doc %d: %s\n", rank+1, m.Score, m.Doc, m.Text)
		}
		if len(eng.Results(query)) == 0 {
			fmt.Println("   (no matching documents in the window)")
		}
	}

	stats := eng.Stats()
	fmt.Printf("\nwindow=%d docs, dictionary=%d terms, score computations=%d (vs %d arrivals — the threshold index filtered the rest)\n",
		eng.WindowLen(), eng.DictionarySize(), stats.ScoreComputations, stats.Arrivals)
}
