package ita

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"ita/internal/faults"
	"ita/internal/wal"
)

// This file is the facade-level proof of warm-standby replication: a
// primary and an in-memory reference run the same workload, a follower
// tails the primary's WAL over a real TCP connection, and at every
// quiesced boundary all three must be byte-identical in the full
// captureState sense (results, stats, counters, id sequences). On top
// of that base the tests exercise the lifecycle edges: follower
// kill/rejoin resuming without a resync, primary crash + Promote with
// the old primary rejoining the new one, and promote-under-partition
// where the old primary's diverged WAL must be detected and resynced
// from a checkpoint. The randomized fault-schedule counterpart lives
// in faultrepl_test.go.

// testReplTuning is the fast-timing override every replication test
// uses: millisecond backoffs and heartbeats so reconnection and
// catch-up happen at test speed.
func testReplTuning(id string) Option {
	return withReplTuning(replTuning{
		id:           id,
		minBackoff:   2 * time.Millisecond,
		maxBackoff:   20 * time.Millisecond,
		dialTimeout:  time.Second,
		readTimeout:  2 * time.Second,
		writeTimeout: 2 * time.Second,
		heartbeat:    10 * time.Millisecond,
		ackTimeout:   5 * time.Second,
	})
}

func replPrimaryOpts(extra ...Option) []Option {
	opts := []Option{
		WithCountWindow(8),
		WithDurability(DurabilityOff),
		WithCheckpointEvery(16),
		// Roomy retention: these lifecycle tests assert Resyncs == 0 on
		// clean-prefix paths, and a loaded machine can stall the standby
		// long enough to cross several checkpoint rotations. The
		// past-retention resync fallback is proven tight in
		// internal/repl (TestFollowerPastRetention) and forced via WAL
		// divergence in TestPromoteUnderPartition.
		WithReplicationRetention(64),
		testReplTuning("primary"),
	}
	return append(opts, extra...)
}

// openReplPrimary opens a durable primary in a fresh temp dir and
// starts replication on a loopback port.
func openReplPrimary(t *testing.T) (*Engine, string, string) {
	t.Helper()
	dir := t.TempDir()
	e, err := Open(dir, replPrimaryOpts()...)
	if err != nil {
		t.Fatalf("open primary: %v", err)
	}
	addr, err := e.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start replication: %v", err)
	}
	return e, addr.String(), dir
}

func openReplFollower(t *testing.T, dir, addr, id string) *Engine {
	t.Helper()
	f, err := OpenFollower(dir, addr, WithDurability(DurabilityOff), testReplTuning(id))
	if err != nil {
		t.Fatalf("open follower %s: %v", id, err)
	}
	return f
}

// waitReplCaughtUp polls until the follower's durable position —
// checkpoint seq, log offset and epoch — exactly matches the
// primary's. The primary must be quiesced (flushed, no concurrent
// writers); once positions match, nothing further flows but
// heartbeats, so the subsequent state comparison is race-free.
func waitReplCaughtUp(t *testing.T, f, p *Engine, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		p.mu.Lock()
		pSeq, pOff, pEpoch := p.wal.ckptSeq, p.wal.log.Offset(), p.wal.epochSeq
		p.mu.Unlock()
		f.mu.Lock()
		fSeq, fOff, fEpoch := f.wal.ckptSeq, f.wal.log.Offset(), f.wal.epochSeq
		pending := len(f.pending)
		f.mu.Unlock()
		if fSeq == pSeq && fOff == pOff && fEpoch == pEpoch && pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: primary at (seq %d, off %d, epoch %d), follower at (seq %d, off %d, epoch %d)",
				pSeq, pOff, pEpoch, fSeq, fOff, fEpoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// requireMirroredSegment asserts the follower's copy of the primary's
// current segment is byte-identical up to the primary's clean offset —
// the literal form of the "standby byte-identical at the acked
// boundary" guarantee.
func requireMirroredSegment(t *testing.T, p, f *Engine, context string) {
	t.Helper()
	p.mu.Lock()
	seq, off, pDir := p.wal.ckptSeq, p.wal.log.Offset(), p.wal.dir
	p.mu.Unlock()
	f.mu.Lock()
	fDir := f.wal.dir
	f.mu.Unlock()
	a, err := readSegmentPrefix(pDir, seq, off)
	if err != nil {
		t.Fatalf("%s: primary segment: %v", context, err)
	}
	b, err := readSegmentPrefix(fDir, seq, off)
	if err != nil {
		t.Fatalf("%s: follower segment: %v", context, err)
	}
	if string(a) != string(b) {
		t.Fatalf("%s: segment %d diverges within the first %d bytes", context, seq, off)
	}
}

func readSegmentPrefix(dir string, seq uint64, off int64) ([]byte, error) {
	data, err := os.ReadFile(wal.SegmentPath(dir, seq))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) < off {
		return nil, fmt.Errorf("segment %d holds %d bytes, want %d", seq, len(data), off)
	}
	return data[:off], nil
}

// crashPrimaryForTest kills a replicating primary the way kill -9
// would: the replication server (and its listener) go away and the
// engine is abandoned unflushed.
func crashPrimaryForTest(e *Engine) {
	e.mu.Lock()
	r := e.repl
	e.mu.Unlock()
	if r != nil && r.server != nil {
		r.server.Close()
	}
	e.crashForTest()
}

// TestFollowerServesReplicatedReads is the base proof: the follower
// byte-mirrors the primary and serves the identical read surface,
// mutations are rejected with ErrReadOnly, replication stats report
// both sides, and a Watch registered on the standby observes the
// primary's epoch deltas.
func TestFollowerServesReplicatedReads(t *testing.T) {
	p, addr, _ := openReplPrimary(t)
	defer p.Close()
	ref, err := New(WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	f := openReplFollower(t, t.TempDir(), addr, "standby")
	defer f.Close()

	live := driveOps(t, 0, 120, p, ref)
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitReplCaughtUp(t, f, p, 10*time.Second)
	requireMirroredSegment(t, p, f, "after catch-up")
	want := captureState(ref)
	requireSameState(t, captureState(p), want, "primary vs reference")
	requireSameState(t, captureState(f), want, "follower vs reference")

	// The standby's read-only contract: every mutating operation is
	// rejected, and the rejection changes nothing.
	if _, err := f.IngestText("oil price", at(99999)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower IngestText: %v, want ErrReadOnly", err)
	}
	if _, err := f.IngestBatch([]TimedText{{Text: "oil", At: at(99999)}}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower IngestBatch: %v, want ErrReadOnly", err)
	}
	if _, err := f.Register("crude market", 2); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Register: %v, want ErrReadOnly", err)
	}
	if err := f.Advance(at(99999)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Advance: %v, want ErrReadOnly", err)
	}
	if err := f.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Flush: %v, want ErrReadOnly", err)
	}
	if err := f.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Checkpoint: %v, want ErrReadOnly", err)
	}
	if err := f.Snapshot(io.Discard); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("follower Snapshot: %v, want ErrReadOnly", err)
	}
	if f.Unregister(live[0]) {
		t.Fatal("follower Unregister reported success")
	}
	if got := f.Results(live[0]); got == nil {
		t.Fatal("follower stopped serving a live query after rejected Unregister")
	}
	if _, err := f.StartReplication("127.0.0.1:0"); err == nil {
		t.Fatal("StartReplication on a follower succeeded")
	}
	if err := p.Promote(); err == nil {
		t.Fatal("Promote on a primary succeeded")
	}
	requireSameState(t, captureState(f), want, "follower after rejected mutations")

	// Replication stats on both sides. Acks travel asynchronously after
	// the apply, so the primary's view of the follower's lag drains to
	// zero shortly after the positions themselves match.
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps := p.ReplicationStats()
		if ps.Role != "primary" || len(ps.Followers) != 1 {
			t.Fatalf("primary stats: %+v", ps)
		}
		if fo := ps.Followers[0]; fo.Connected && fo.LagEpochs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower ack never caught up: %+v", ps.Followers[0])
		}
		time.Sleep(2 * time.Millisecond)
	}
	fs := f.ReplicationStats()
	if fs.Role != "follower" || !fs.Connected || fs.LagEpochs != 0 || fs.Resyncs != 0 {
		t.Fatalf("follower stats: %+v", fs)
	}

	// A Watch on the standby observes the primary's epoch deltas: flood
	// the window with documents matching one live query and the new doc
	// ids must be delivered as Entered on the follower.
	id := live[len(live)-1]
	var mu sync.Mutex
	var got []Delta
	if err := f.Watch(id, func(d Delta) {
		mu.Lock()
		got = append(got, d)
		mu.Unlock()
	}); err != nil {
		t.Fatalf("follower Watch: %v", err)
	}
	text, ok := f.QueryText(id)
	if !ok {
		t.Fatalf("follower lost text of query %d", id)
	}
	for i := 0; i < 10; i++ {
		for _, e := range []*Engine{p, ref} {
			if _, err := e.IngestText(text, at(50000+i)); err != nil {
				t.Fatalf("ingest %d: %v", i, err)
			}
		}
	}
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitReplCaughtUp(t, f, p, 10*time.Second)
	mu.Lock()
	n := len(got)
	for _, d := range got {
		if d.Query != id {
			t.Errorf("follower watch delivered delta for query %d, watched %d", d.Query, id)
		}
	}
	mu.Unlock()
	if n == 0 {
		t.Fatal("follower watch observed no deltas after matching ingests reached the standby")
	}
	requireSameState(t, captureState(f), captureState(ref), "follower after watch phase")
}

// TestFollowerKillRejoinResumes kills the standby mid-stream and
// rejoins it from its directory: recovery from the mirrored WAL plus a
// resume handshake must bring it back byte-identical without a
// checkpoint resync.
func TestFollowerKillRejoinResumes(t *testing.T) {
	p, addr, _ := openReplPrimary(t)
	defer p.Close()
	ref, err := New(WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	fDir := t.TempDir()
	f := openReplFollower(t, fDir, addr, "standby")

	driveOps(t, 0, 80, p, ref)
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitReplCaughtUp(t, f, p, 10*time.Second)
	if err := f.Close(); err != nil {
		t.Fatalf("close follower: %v", err)
	}

	// The primary keeps going while the standby is down — far enough to
	// cross checkpoint rotations, but within the retention window, so
	// the rejoin can resume from its mirrored WAL instead of falling
	// back to a checkpoint fetch (the past-retention fallback is proven
	// separately in internal/repl).
	driveOps(t, 80, 115, p, ref)
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	f2 := openReplFollower(t, fDir, addr, "standby")
	defer f2.Close()
	waitReplCaughtUp(t, f2, p, 10*time.Second)
	requireMirroredSegment(t, p, f2, "after rejoin")
	requireSameState(t, captureState(f2), captureState(ref), "rejoined follower vs reference")
	if fs := f2.ReplicationStats(); fs.Resyncs != 0 {
		t.Fatalf("rejoin fell back to a checkpoint resync: %+v", fs)
	}
}

// TestPrimaryKillPromoteContinues is the failover path: kill -9 the
// primary, promote the standby, keep writing to it, and rejoin the old
// primary's directory as a follower of the new one — every state along
// the way byte-identical to the never-killed reference.
func TestPrimaryKillPromoteContinues(t *testing.T) {
	p, addr, pDir := openReplPrimary(t)
	ref, err := New(WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	f := openReplFollower(t, t.TempDir(), addr, "standby")
	defer f.Close()

	driveOps(t, 0, 100, p, ref)
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitReplCaughtUp(t, f, p, 10*time.Second)

	crashPrimaryForTest(p)
	if err := f.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted standby vs reference")

	// The promoted engine accepts writes and stays in lockstep with the
	// reference.
	driveOps(t, 100, 160, f, ref)
	for _, e := range []*Engine{f, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted standby after writes")
	if err := f.Promote(); err == nil {
		t.Fatal("second Promote succeeded")
	}

	// Next generation: the promoted engine serves replication and the
	// old primary's directory rejoins as its follower. The old
	// primary's WAL is a clean prefix of the new one's history, so the
	// rejoin must resume, not resync.
	nAddr, err := f.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatalf("promoted StartReplication: %v", err)
	}
	old := openReplFollower(t, pDir, nAddr.String(), "old-primary")
	defer old.Close()
	waitReplCaughtUp(t, old, f, 10*time.Second)
	requireMirroredSegment(t, f, old, "old primary rejoined")
	requireSameState(t, captureState(old), captureState(ref), "old primary as follower vs reference")
	if fs := old.ReplicationStats(); fs.Resyncs != 0 {
		t.Fatalf("clean-prefix rejoin fell back to a resync: %+v", fs)
	}
}

// TestPromoteUnderPartition promotes the standby while the network is
// cut and the unreachable primary keeps accepting writes. The promoted
// engine must equal the last replicated boundary; after the split the
// old primary's diverged WAL must be detected by the resume handshake
// and resynced from the new primary's checkpoint.
func TestPromoteUnderPartition(t *testing.T) {
	netw := faults.NewNetwork(faults.NewSchedule(1, faults.Config{}))

	pDir := t.TempDir()
	p, err := Open(pDir, replPrimaryOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.startReplicationOn(netw.Listener(l)); err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	ref, err := New(WithCountWindow(8))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	fDir := t.TempDir()
	f, err := OpenFollower(fDir, addr, WithDurability(DurabilityOff),
		withReplTuning(replTuning{
			id: "standby", dial: netw.Dial,
			minBackoff: 2 * time.Millisecond, maxBackoff: 20 * time.Millisecond,
			dialTimeout: time.Second, readTimeout: 2 * time.Second, writeTimeout: 2 * time.Second,
			heartbeat: 10 * time.Millisecond, ackTimeout: 5 * time.Second,
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	driveOps(t, 0, 90, p, ref)
	for _, e := range []*Engine{p, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	waitReplCaughtUp(t, f, p, 10*time.Second)

	// Split brain: the primary keeps writing behind the partition; none
	// of it reaches the standby.
	netw.Partition()
	driveOps(t, 200, 240, p)
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Promote(); err != nil {
		t.Fatalf("promote under partition: %v", err)
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted at partition boundary")

	// The promoted side continues with its own history (different ops
	// than the partitioned primary wrote).
	driveOps(t, 300, 345, f, ref)
	for _, e := range []*Engine{f, ref} {
		if err := e.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	requireSameState(t, captureState(f), captureState(ref), "promoted after divergence")

	// Heal and fail the old primary over: its WAL holds records the new
	// primary's history never had, so rejoining as a follower must
	// detect the divergence and resync from the checkpoint.
	netw.Heal()
	if err := p.Close(); err != nil {
		t.Fatalf("close old primary: %v", err)
	}
	nAddr, err := f.StartReplication("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	old := openReplFollower(t, pDir, nAddr.String(), "old-primary")
	defer old.Close()
	waitReplCaughtUp(t, old, f, 10*time.Second)
	requireSameState(t, captureState(old), captureState(ref), "diverged primary resynced vs reference")
	if fs := old.ReplicationStats(); fs.Resyncs == 0 {
		t.Fatalf("diverged rejoin resumed without a resync: %+v", fs)
	}
}
