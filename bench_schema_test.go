package ita_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ita/internal/harness"
)

// TestBenchJSONSchemas sanity-checks every checked-in BENCH_*.json
// artifact: each must parse, carry its hardware context (gomaxprocs,
// num_cpu) and a non-empty points array, and BENCH_SCALE.json must
// additionally match the scale schema — including the chained layout
// baselines, the ≥30% bytes/query reduction the dense layout holds
// against the original pointer-and-map layout, and the ingest-curve
// acceptance of the θ-ordered probe index: per-event probe-cost fields
// on every point, a curve ratio that rules out the old ingest cliff,
// and a 1M-query ingest rate at least 25× the pre-θ-index record.
// BENCH_WINDOW.json must match the window schema and hold the blocked
// posting layout's two headline acceptances against its embedded slice
// baseline: ≥50% bytes/posting reduction and no probe-latency
// regression at the paper-scale 100k window.
func TestBenchJSONSchemas(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("found %d BENCH_*.json files, want at least 8 (sharded, batch, reads, recovery, scale, failover, cluster, window)", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(f, func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var generic struct {
				GOMAXPROCS int              `json:"gomaxprocs"`
				NumCPU     int              `json:"num_cpu"`
				Points     []map[string]any `json:"points"`
			}
			if err := json.Unmarshal(data, &generic); err != nil {
				t.Fatalf("%s does not parse: %v", f, err)
			}
			if generic.GOMAXPROCS <= 0 || generic.NumCPU <= 0 {
				t.Fatalf("%s missing hardware context: gomaxprocs=%d num_cpu=%d",
					f, generic.GOMAXPROCS, generic.NumCPU)
			}
			if len(generic.Points) == 0 {
				t.Fatalf("%s has no measurement points", f)
			}

			if f == "BENCH_FAILOVER.json" {
				var rep harness.FailoverReport
				if err := json.Unmarshal(data, &rep); err != nil {
					t.Fatal(err)
				}
				phases := map[string]int{}
				for _, pt := range rep.Points {
					phases[pt.Phase]++
					switch pt.Phase {
					case "steady":
						if pt.LagSamples <= 0 || pt.DrainMs <= 0 {
							t.Fatalf("malformed steady point %+v", pt)
						}
					case "catchup":
						if pt.BehindEpochs <= 0 || pt.CatchupMs <= 0 {
							t.Fatalf("malformed catchup point %+v", pt)
						}
					case "promote":
						if pt.PromoteMs <= 0 || pt.FirstReadMs <= 0 || !pt.PromotedOK {
							t.Fatalf("malformed promote point %+v", pt)
						}
					default:
						t.Fatalf("unknown failover phase %q", pt.Phase)
					}
				}
				if phases["steady"] == 0 || phases["catchup"] == 0 || phases["promote"] != 1 {
					t.Fatalf("failover report phase coverage %v, want steady, catchup cells and exactly one promote", phases)
				}
			}

			if f == "BENCH_CLUSTER.json" {
				var rep harness.ClusterReport
				if err := json.Unmarshal(data, &rep); err != nil {
					t.Fatal(err)
				}
				phases := map[string]int{}
				maxNodes := 0
				for _, pt := range rep.Points {
					phases[pt.Phase]++
					if !pt.EquivalentOK {
						t.Fatalf("cluster cell served diverged results: %+v", pt)
					}
					if pt.Nodes > maxNodes {
						maxNodes = pt.Nodes
					}
					switch pt.Phase {
					case "ingest":
						if pt.IngestPerSec <= 0 || pt.RelBaseline <= 0 {
							t.Fatalf("malformed ingest point %+v", pt)
						}
					case "read":
						if pt.MergedReadUs <= 0 || pt.OwnerReadUs <= 0 || pt.ReadIters <= 0 {
							t.Fatalf("malformed read point %+v", pt)
						}
					default:
						t.Fatalf("unknown cluster phase %q", pt.Phase)
					}
				}
				if phases["ingest"] < 2 || phases["read"] < 2 || maxNodes < 2 {
					t.Fatalf("cluster report phase coverage %v (max %d nodes), want ingest and read cells for a multi-node count",
						phases, maxNodes)
				}
			}

			if f == "BENCH_WINDOW.json" {
				var rep harness.WindowReport
				if err := json.Unmarshal(data, &rep); err != nil {
					t.Fatal(err)
				}
				if rep.Schema != harness.WindowSchema {
					t.Fatalf("schema %q, want %q", rep.Schema, harness.WindowSchema)
				}
				maxW := 0
				for _, pt := range rep.Points {
					if pt.Window <= 0 || pt.Postings == 0 || pt.PostingBytes == 0 ||
						pt.BytesPerPosting <= 0 || pt.IngestPerSec <= 0 || pt.ProbeLatencyUs <= 0 {
						t.Fatalf("malformed window point %+v", pt)
					}
					if pt.Window > maxW {
						maxW = pt.Window
					}
				}
				if maxW < 100_000 {
					t.Fatalf("window sweep tops out at %d, want the paper-scale 100k window", maxW)
				}
				if rep.Baseline == nil || len(rep.Baseline.Points) == 0 {
					t.Fatal("window report has no embedded slice baseline")
				}
				if rep.Layout == rep.Baseline.Layout {
					t.Fatalf("report and baseline both measure layout %q", rep.Layout)
				}
				// The two headline acceptances of the blocked layout: the
				// compression must halve the storage bill at the largest
				// window, and it must not cost the read path anything there.
				if rep.BytesReductionPct < 50 {
					t.Fatalf("bytes/posting reduction vs %q is %.1f%%, want >= 50%%",
						rep.Baseline.Layout, rep.BytesReductionPct)
				}
				if rep.ProbeLatencyRatio <= 0 || rep.ProbeLatencyRatio > 1.0 {
					t.Fatalf("probe latency ratio vs %q is %.2f, want in (0, 1.0] (no read-path regression)",
						rep.Baseline.Layout, rep.ProbeLatencyRatio)
				}
			}

			if f != "BENCH_SCALE.json" {
				return
			}
			var rep harness.ScaleReport
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Schema != harness.ScaleSchema {
				t.Fatalf("schema %q, want %q", rep.Schema, harness.ScaleSchema)
			}
			maxQ := 0
			for _, pt := range rep.Points {
				if pt.Queries <= 0 || pt.BytesPerQuery <= 0 || pt.IngestEvents <= 0 {
					t.Fatalf("malformed scale point %+v", pt)
				}
				if pt.ProbeHitsPerEvent <= 0 || pt.ScoreCompsPerEvent <= 0 {
					t.Fatalf("scale point at %d queries missing probe-cost fields: %+v", pt.Queries, pt)
				}
				if pt.Queries > maxQ {
					maxQ = pt.Queries
				}
			}
			if maxQ < 1_000_000 {
				t.Fatalf("scale sweep tops out at %d queries, want at least 1M", maxQ)
			}
			if rep.Baseline == nil || len(rep.Baseline.Points) == 0 {
				t.Fatal("scale report has no embedded baseline")
			}
			if rep.Layout == rep.Baseline.Layout {
				t.Fatalf("report and baseline both measure layout %q", rep.Layout)
			}

			// The ingest cliff this sweep exists to catch: the curve may
			// not collapse with query count, and the largest point must
			// beat the pre-θ-index record by the accepted 25×.
			if rep.IngestCurveRatio < 0.25 {
				t.Fatalf("ingest curve ratio %.3f, want >= 0.25 (events/s at %d queries collapses vs the smallest count)",
					rep.IngestCurveRatio, maxQ)
			}
			var prior1M float64
			for b := rep.Baseline; b != nil; b = b.Baseline {
				for _, pt := range b.Points {
					if pt.Queries == maxQ && pt.IngestPerSec > 0 {
						prior1M = pt.IngestPerSec // deepest chained record wins
					}
				}
			}
			cur1M := 0.0
			for _, pt := range rep.Points {
				if pt.Queries == maxQ {
					cur1M = pt.IngestPerSec
				}
			}
			if prior1M > 0 && cur1M < 25*prior1M {
				t.Fatalf("ingest at %d queries is %.1f events/s, want >= 25x the prior record's %.2f",
					maxQ, cur1M, prior1M)
			}

			// Memory claim: the dense layout's bytes/query reduction is
			// measured against the original pointer-and-map layout — the
			// deepest report in the baseline chain — at the largest query
			// count both sweeps share.
			deepest := rep.Baseline
			for deepest.Baseline != nil && len(deepest.Baseline.Points) > 0 {
				deepest = deepest.Baseline
			}
			var cur, old *harness.ScalePoint
			for i := range rep.Points {
				for j := range deepest.Points {
					if rep.Points[i].Queries == deepest.Points[j].Queries &&
						(cur == nil || rep.Points[i].Queries > cur.Queries) {
						cur, old = &rep.Points[i], &deepest.Points[j]
					}
				}
			}
			if cur == nil {
				t.Fatalf("no shared sweep point between layout %q and deepest baseline %q", rep.Layout, deepest.Layout)
			}
			if red := 100 * (1 - cur.BytesPerQuery/old.BytesPerQuery); red < 30 {
				t.Fatalf("bytes/query reduction vs %q is %.1f%%, want >= 30%%", deepest.Layout, red)
			}
		})
	}
}
