package ita_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ita/internal/harness"
)

// TestBenchJSONSchemas sanity-checks every checked-in BENCH_*.json
// artifact: each must parse, carry its hardware context (gomaxprocs,
// num_cpu) and a non-empty points array, and BENCH_SCALE.json must
// additionally match the scale schema — including the embedded
// pre-refactor baseline and the ≥30% bytes/query reduction the dense
// layout is required to hold at the largest shared sweep point.
func TestBenchJSONSchemas(t *testing.T) {
	files, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 6 {
		t.Fatalf("found %d BENCH_*.json files, want at least 6 (sharded, batch, reads, recovery, scale, failover)", len(files))
	}
	for _, f := range files {
		f := f
		t.Run(f, func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			var generic struct {
				GOMAXPROCS int              `json:"gomaxprocs"`
				NumCPU     int              `json:"num_cpu"`
				Points     []map[string]any `json:"points"`
			}
			if err := json.Unmarshal(data, &generic); err != nil {
				t.Fatalf("%s does not parse: %v", f, err)
			}
			if generic.GOMAXPROCS <= 0 || generic.NumCPU <= 0 {
				t.Fatalf("%s missing hardware context: gomaxprocs=%d num_cpu=%d",
					f, generic.GOMAXPROCS, generic.NumCPU)
			}
			if len(generic.Points) == 0 {
				t.Fatalf("%s has no measurement points", f)
			}

			if f == "BENCH_FAILOVER.json" {
				var rep harness.FailoverReport
				if err := json.Unmarshal(data, &rep); err != nil {
					t.Fatal(err)
				}
				phases := map[string]int{}
				for _, pt := range rep.Points {
					phases[pt.Phase]++
					switch pt.Phase {
					case "steady":
						if pt.LagSamples <= 0 || pt.DrainMs <= 0 {
							t.Fatalf("malformed steady point %+v", pt)
						}
					case "catchup":
						if pt.BehindEpochs <= 0 || pt.CatchupMs <= 0 {
							t.Fatalf("malformed catchup point %+v", pt)
						}
					case "promote":
						if pt.PromoteMs <= 0 || pt.FirstReadMs <= 0 || !pt.PromotedOK {
							t.Fatalf("malformed promote point %+v", pt)
						}
					default:
						t.Fatalf("unknown failover phase %q", pt.Phase)
					}
				}
				if phases["steady"] == 0 || phases["catchup"] == 0 || phases["promote"] != 1 {
					t.Fatalf("failover report phase coverage %v, want steady, catchup cells and exactly one promote", phases)
				}
			}

			if f != "BENCH_SCALE.json" {
				return
			}
			var rep harness.ScaleReport
			if err := json.Unmarshal(data, &rep); err != nil {
				t.Fatal(err)
			}
			if rep.Schema != harness.ScaleSchema {
				t.Fatalf("schema %q, want %q", rep.Schema, harness.ScaleSchema)
			}
			maxQ := 0
			for _, pt := range rep.Points {
				if pt.Queries <= 0 || pt.BytesPerQuery <= 0 || pt.IngestEvents <= 0 {
					t.Fatalf("malformed scale point %+v", pt)
				}
				if pt.Queries > maxQ {
					maxQ = pt.Queries
				}
			}
			if maxQ < 1_000_000 {
				t.Fatalf("scale sweep tops out at %d queries, want at least 1M", maxQ)
			}
			if rep.Baseline == nil || len(rep.Baseline.Points) == 0 {
				t.Fatal("scale report has no embedded pre-refactor baseline")
			}
			if rep.Layout == rep.Baseline.Layout {
				t.Fatalf("report and baseline both measure layout %q", rep.Layout)
			}
			if rep.ReductionPct < 30 {
				t.Fatalf("bytes/query reduction %.1f%%, want >= 30%%", rep.ReductionPct)
			}
		})
	}
}
